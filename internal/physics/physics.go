// Package physics provides the gas-phase ion transport physics underlying
// the drift-tube simulation: the Mason–Schamp mobility equation, diffusion
// broadening, the diffusion-limited resolving power of a drift tube, and the
// Coulombic (space-charge) packet expansion model of Tolmachev et al.
// (Anal. Chem. 2009) that bounds how many charges an ion funnel trap may
// inject per gate pulse before resolution degrades.
//
// Unless a field says otherwise, quantities are in SI units; pressures are
// in Torr and mass inputs in unified atomic mass units (Da) because those
// are the units instrument configurations are written in.
package physics

import (
	"fmt"
	"math"
)

// Physical constants (CODATA).
const (
	BoltzmannK      = 1.380649e-23      // J/K
	ElementaryQ     = 1.602176634e-19   // C
	AtomicMassKg    = 1.66053906660e-27 // kg per Da
	AvogadroN       = 6.02214076e23
	StandardPresTor = 760.0  // Torr
	StandardTempK   = 273.15 // K
	TorrToPa        = 133.322368
)

// Gas describes the neutral buffer gas in the drift cell.
type Gas struct {
	Name   string
	MassDa float64 // molecular mass in Da
}

// Common buffer gases.
var (
	Nitrogen = Gas{Name: "N2", MassDa: 28.0134}
	Helium   = Gas{Name: "He", MassDa: 4.002602}
	Argon    = Gas{Name: "Ar", MassDa: 39.948}
)

// NumberDensity returns the gas number density (molecules per m^3) at the
// given pressure (Torr) and temperature (K), from the ideal gas law.
func NumberDensity(pressureTorr, tempK float64) float64 {
	return pressureTorr * TorrToPa / (BoltzmannK * tempK)
}

// Conditions bundles the drift-cell operating state.
type Conditions struct {
	Gas          Gas
	PressureTorr float64 // buffer gas pressure, Torr
	TempK        float64 // gas temperature, K
	FieldVPerM   float64 // axial drift field, V/m
}

// Validate reports a descriptive error for unphysical conditions.
func (c Conditions) Validate() error {
	if c.Gas.MassDa <= 0 {
		return fmt.Errorf("physics: gas mass %g Da must be positive", c.Gas.MassDa)
	}
	if c.PressureTorr <= 0 {
		return fmt.Errorf("physics: pressure %g Torr must be positive", c.PressureTorr)
	}
	if c.TempK <= 0 {
		return fmt.Errorf("physics: temperature %g K must be positive", c.TempK)
	}
	if c.FieldVPerM <= 0 {
		return fmt.Errorf("physics: drift field %g V/m must be positive", c.FieldVPerM)
	}
	return nil
}

// Mobility returns the ion mobility K (m^2/(V·s)) from the Mason–Schamp
// equation for an ion of the given mass (Da), charge state z and
// collision cross section (m^2) under conditions c:
//
//	K = 3ze/(16N) · sqrt(2π/(μ k T)) · 1/Ω
//
// where μ is the reduced mass of the ion-neutral pair and N the gas number
// density.
func Mobility(massDa float64, z int, ccsM2 float64, c Conditions) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if massDa <= 0 || z <= 0 || ccsM2 <= 0 {
		return 0, fmt.Errorf("physics: mobility needs positive mass (%g), charge (%d) and CCS (%g)", massDa, z, ccsM2)
	}
	mIon := massDa * AtomicMassKg
	mGas := c.Gas.MassDa * AtomicMassKg
	mu := mIon * mGas / (mIon + mGas)
	n := NumberDensity(c.PressureTorr, c.TempK)
	k := 3 * float64(z) * ElementaryQ / (16 * n) *
		math.Sqrt(2*math.Pi/(mu*BoltzmannK*c.TempK)) / ccsM2
	return k, nil
}

// ReducedMobility converts a mobility K measured at (pressureTorr, tempK) to
// the standard-conditions reduced mobility K0.
func ReducedMobility(k, pressureTorr, tempK float64) float64 {
	return k * (pressureTorr / StandardPresTor) * (StandardTempK / tempK)
}

// MobilityFromReduced is the inverse of ReducedMobility.
func MobilityFromReduced(k0, pressureTorr, tempK float64) float64 {
	return k0 * (StandardPresTor / pressureTorr) * (tempK / StandardTempK)
}

// CCSFromMobility inverts Mason–Schamp: given a mobility (m^2/Vs) it returns
// the collision cross section (m^2).
func CCSFromMobility(massDa float64, z int, k float64, c Conditions) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("physics: mobility %g must be positive", k)
	}
	// Mason–Schamp is linear in 1/Ω, so solve via the identity
	// K·Ω = const ⇒ Ω = const/K with const evaluated at Ω=1.
	kAtUnitCCS, err := Mobility(massDa, z, 1.0, c)
	if err != nil {
		return 0, err
	}
	return kAtUnitCCS / k, nil
}

// DriftVelocity returns v_d = K·E (m/s) in the low-field limit.
func DriftVelocity(k float64, c Conditions) float64 {
	return k * c.FieldVPerM
}

// DriftTime returns the time (s) for an ion of mobility k to traverse a
// drift region of length lengthM under conditions c.
func DriftTime(k, lengthM float64, c Conditions) (float64, error) {
	if lengthM <= 0 {
		return 0, fmt.Errorf("physics: drift length %g m must be positive", lengthM)
	}
	v := DriftVelocity(k, c)
	if v <= 0 {
		return 0, fmt.Errorf("physics: non-positive drift velocity %g", v)
	}
	return lengthM / v, nil
}

// DiffusionCoefficient returns the longitudinal diffusion coefficient
// D = K·k_B·T/(z·e) (m^2/s) from the Einstein relation (low-field limit).
func DiffusionCoefficient(k float64, z int, tempK float64) float64 {
	return k * BoltzmannK * tempK / (float64(z) * ElementaryQ)
}

// DiffusionSigmaTime returns the temporal standard deviation (s) contributed
// by longitudinal diffusion after drifting for time t with drift velocity v:
// spatial σ = sqrt(2 D t), temporal σ = spatial/v.
func DiffusionSigmaTime(d, t, v float64) float64 {
	if d <= 0 || t <= 0 || v <= 0 {
		return 0
	}
	return math.Sqrt(2*d*t) / v
}

// ResolvingPower returns the diffusion-limited resolving power t/Δt(FWHM) of
// a drift tube with voltage drop V across the drift length for a charge
// state z ion at temperature tempK:
//
//	R = sqrt( z e V / (16 k_B T ln 2) )
//
// This is the classic single-gate limit; gate width and space charge reduce
// it further (see TotalSigmaTime).
func ResolvingPower(z int, driftVoltage, tempK float64) (float64, error) {
	if z <= 0 || driftVoltage <= 0 || tempK <= 0 {
		return 0, fmt.Errorf("physics: resolving power needs positive z (%d), voltage (%g) and temperature (%g)", z, driftVoltage, tempK)
	}
	return math.Sqrt(float64(z) * ElementaryQ * driftVoltage / (16 * BoltzmannK * tempK * math.Ln2)), nil
}

// FWHMFromSigma converts a Gaussian σ to full width at half maximum.
func FWHMFromSigma(sigma float64) float64 {
	return sigma * 2 * math.Sqrt(2*math.Ln2)
}

// SigmaFromFWHM is the inverse of FWHMFromSigma.
func SigmaFromFWHM(fwhm float64) float64 {
	return fwhm / (2 * math.Sqrt(2*math.Ln2))
}

// SpaceCharge models Coulombic expansion of a drifting ion packet following
// the treatment of Tolmachev, Clowers, Belov & Smith (Anal. Chem. 2009): a
// charged cylinder of ions expands radially and axially under its own field;
// the axial growth adds variance to the arrival-time distribution.  The
// model reproduces the experimentally observed onset of resolution
// degradation above ~10^4 charges per packet.
type SpaceCharge struct {
	Charges       float64 // elementary charges in the packet
	InitialRadius float64 // initial packet radius, m
	InitialLength float64 // initial packet axial length, m
}

// expansionRate returns the characteristic Coulomb expansion speed (m/s) of
// the packet boundary for an ion of mobility k: v_c = K·E_surface, with the
// surface field of a uniformly charged cylinder of the packet's geometry.
func (sc SpaceCharge) expansionRate(k float64) float64 {
	if sc.Charges <= 0 || sc.InitialRadius <= 0 {
		return 0
	}
	length := sc.InitialLength
	if length < sc.InitialRadius {
		length = sc.InitialRadius
	}
	// Line charge density λ = Q/L; surface field of a long charged cylinder
	// E = λ/(2πε0 r).
	const eps0 = 8.8541878128e-12
	lambda := sc.Charges * ElementaryQ / length
	e := lambda / (2 * math.Pi * eps0 * sc.InitialRadius)
	return k * e
}

// SigmaTime returns the additional temporal standard deviation (s)
// contributed by space-charge expansion over drift time t for an ion with
// mobility k and drift velocity v.  The axial boundary expands at roughly
// the Coulomb rate for a time that shortens as the packet dilutes; the
// logarithmic saturation follows the cylindrical expansion solution.
func (sc SpaceCharge) SigmaTime(k, t, v float64) float64 {
	if t <= 0 || v <= 0 {
		return 0
	}
	vc := sc.expansionRate(k)
	if vc <= 0 {
		return 0
	}
	// Coulomb expansion of a charged cylinder: with the boundary field
	// E ∝ 1/r, the boundary obeys r·dr/dt = K·λ/(2πε₀), i.e.
	// r(t) = r0·sqrt(1 + 2·v_c·t/r0).  The same sqrt-law growth applies to
	// the axial boundary displacement, divided by √12 to convert a uniform
	// boundary displacement into a standard deviation.
	dz := sc.InitialRadius * (math.Sqrt(1+2*vc*t/sc.InitialRadius) - 1)
	return dz / (math.Sqrt(12) * v)
}

// TotalSigmaTime combines the independent broadening contributions of a
// drift experiment in quadrature: initial gate pulse width (uniform, width
// gateWidth), longitudinal diffusion, and space charge.
func TotalSigmaTime(gateWidth, diffusionSigma, spaceChargeSigma float64) float64 {
	gateSigma := gateWidth / math.Sqrt(12)
	return math.Sqrt(gateSigma*gateSigma + diffusionSigma*diffusionSigma + spaceChargeSigma*spaceChargeSigma)
}

// EffectiveResolvingPower returns t_d / FWHM for a drift time t and total
// temporal sigma.
func EffectiveResolvingPower(driftTime, totalSigma float64) float64 {
	if totalSigma <= 0 {
		return math.Inf(1)
	}
	return driftTime / FWHMFromSigma(totalSigma)
}

// LowFieldRatio returns E/N in Townsend (1 Td = 1e-21 V·m^2).  The
// Mason–Schamp low-field treatment is valid for E/N ≲ 2 Td for peptide
// ions; Validate-style callers can check this.
func LowFieldRatio(c Conditions) float64 {
	n := NumberDensity(c.PressureTorr, c.TempK)
	return c.FieldVPerM / n / 1e-21
}
