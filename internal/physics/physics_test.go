package physics

import (
	"math"
	"testing"
	"testing/quick"
)

// standardConditions: a 4 Torr nitrogen drift tube, ~2 kV across 1 m.
func standardConditions() Conditions {
	return Conditions{
		Gas:          Nitrogen,
		PressureTorr: 4,
		TempK:        300,
		FieldVPerM:   2000,
	}
}

func TestNumberDensity(t *testing.T) {
	// Loschmidt constant: 2.6868e25 m^-3 at 0 C, 760 Torr.
	n := NumberDensity(760, 273.15)
	if math.Abs(n-2.6868e25)/2.6868e25 > 1e-3 {
		t.Errorf("number density at STP = %g, want ~2.6868e25", n)
	}
	// Proportional to pressure, inverse in temperature.
	if n2 := NumberDensity(380, 273.15); math.Abs(n2-n/2) > n*1e-12 {
		t.Error("density not proportional to pressure")
	}
	if n3 := NumberDensity(760, 2*273.15); math.Abs(n3-n/2) > n*1e-12 {
		t.Error("density not inverse in temperature")
	}
}

func TestConditionsValidate(t *testing.T) {
	good := standardConditions()
	if err := good.Validate(); err != nil {
		t.Fatalf("standard conditions invalid: %v", err)
	}
	cases := []Conditions{
		{Gas: Gas{MassDa: 0}, PressureTorr: 4, TempK: 300, FieldVPerM: 100},
		{Gas: Nitrogen, PressureTorr: 0, TempK: 300, FieldVPerM: 100},
		{Gas: Nitrogen, PressureTorr: 4, TempK: 0, FieldVPerM: 100},
		{Gas: Nitrogen, PressureTorr: 4, TempK: 300, FieldVPerM: 0},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// TestMobilityRealisticMagnitude: a 1000 Da, 2+ peptide with a CCS of 300 Å^2
// in N2 has a reduced mobility around 0.1–0.2 m^2/(V·s)·(Torr/760)... i.e.
// K0 in the 1e-4 m^2/Vs range (literature: ~1.1–1.5 cm^2/Vs).
func TestMobilityRealisticMagnitude(t *testing.T) {
	c := standardConditions()
	ccs := 300e-20 // 300 Å^2 in m^2
	k, err := Mobility(1000, 2, ccs, c)
	if err != nil {
		t.Fatal(err)
	}
	k0 := ReducedMobility(k, c.PressureTorr, c.TempK)
	// Expect K0 of order 1e-4 m^2/Vs (1–2 cm^2/Vs).
	if k0 < 0.5e-4 || k0 > 3e-4 {
		t.Errorf("K0 = %g m^2/Vs, want ~1-2 cm^2/Vs (1e-4-2e-4)", k0)
	}
}

func TestMobilityScaling(t *testing.T) {
	c := standardConditions()
	ccs := 250e-20
	k1, _ := Mobility(800, 1, ccs, c)
	k2, _ := Mobility(800, 2, ccs, c)
	// Mobility is proportional to charge.
	if math.Abs(k2-2*k1) > 1e-12*k1 {
		t.Errorf("mobility not proportional to z: k1=%g k2=%g", k1, k2)
	}
	// Inverse in CCS.
	k3, _ := Mobility(800, 1, 2*ccs, c)
	if math.Abs(k3-k1/2) > 1e-12*k1 {
		t.Error("mobility not inverse in CCS")
	}
	// Denser gas (higher pressure) lowers mobility proportionally.
	c2 := c
	c2.PressureTorr *= 2
	k4, _ := Mobility(800, 1, ccs, c2)
	if math.Abs(k4-k1/2) > 1e-9*k1 {
		t.Error("mobility not inverse in pressure")
	}
}

func TestMobilityErrors(t *testing.T) {
	c := standardConditions()
	if _, err := Mobility(0, 1, 1e-18, c); err == nil {
		t.Error("zero mass should error")
	}
	if _, err := Mobility(100, 0, 1e-18, c); err == nil {
		t.Error("zero charge should error")
	}
	if _, err := Mobility(100, 1, 0, c); err == nil {
		t.Error("zero CCS should error")
	}
	bad := c
	bad.PressureTorr = -1
	if _, err := Mobility(100, 1, 1e-18, bad); err == nil {
		t.Error("bad conditions should error")
	}
}

func TestReducedMobilityRoundTrip(t *testing.T) {
	f := func(kq uint16, p uint8, tK uint8) bool {
		k := float64(kq)/1e6 + 1e-6
		pres := float64(p)/10 + 0.5
		temp := float64(tK) + 200
		k0 := ReducedMobility(k, pres, temp)
		back := MobilityFromReduced(k0, pres, temp)
		return math.Abs(back-k) < 1e-12*k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCCSFromMobilityRoundTrip(t *testing.T) {
	c := standardConditions()
	ccs := 350e-20
	k, _ := Mobility(1500, 2, ccs, c)
	back, err := CCSFromMobility(1500, 2, k, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back-ccs) > 1e-9*ccs {
		t.Errorf("CCS round trip: got %g, want %g", back, ccs)
	}
	if _, err := CCSFromMobility(1500, 2, 0, c); err == nil {
		t.Error("zero mobility should error")
	}
}

func TestDriftTime(t *testing.T) {
	c := standardConditions()
	ccs := 300e-20
	k, _ := Mobility(1000, 2, ccs, c)
	td, err := DriftTime(k, 1.0, c)
	if err != nil {
		t.Fatal(err)
	}
	// Drift times in a ~1 m, few-Torr tube are tens of ms.
	if td < 1e-3 || td > 0.5 {
		t.Errorf("drift time %g s out of plausible range (1 ms - 500 ms)", td)
	}
	// Doubling length doubles time.
	td2, _ := DriftTime(k, 2.0, c)
	if math.Abs(td2-2*td) > 1e-12 {
		t.Error("drift time not proportional to length")
	}
	if _, err := DriftTime(k, 0, c); err == nil {
		t.Error("zero length should error")
	}
	if _, err := DriftTime(0, 1, c); err == nil {
		t.Error("zero mobility should error")
	}
}

func TestDiffusionCoefficient(t *testing.T) {
	k := 1e-4
	d1 := DiffusionCoefficient(k, 1, 300)
	d2 := DiffusionCoefficient(k, 2, 300)
	if math.Abs(d1-2*d2) > 1e-15 {
		t.Error("diffusion should be inverse in charge at fixed K")
	}
	// Einstein relation magnitude: D = K kT/e ~ 1e-4 * 0.0259 ≈ 2.6e-6.
	want := k * BoltzmannK * 300 / ElementaryQ
	if math.Abs(d1-want) > 1e-18 {
		t.Errorf("D = %g, want %g", d1, want)
	}
}

func TestDiffusionSigmaTime(t *testing.T) {
	d, tDrift, v := 2.5e-6, 0.03, 30.0
	sigma := DiffusionSigmaTime(d, tDrift, v)
	want := math.Sqrt(2*d*tDrift) / v
	if math.Abs(sigma-want) > 1e-15 {
		t.Errorf("sigma = %g, want %g", sigma, want)
	}
	if DiffusionSigmaTime(0, 1, 1) != 0 || DiffusionSigmaTime(1, 0, 1) != 0 || DiffusionSigmaTime(1, 1, 0) != 0 {
		t.Error("degenerate inputs should give zero")
	}
}

// TestResolvingPowerMagnitude: classic result — a few-kV drift tube gives
// diffusion-limited resolving power of order 50-150.
func TestResolvingPowerMagnitude(t *testing.T) {
	r, err := ResolvingPower(1, 2000, 300)
	if err != nil {
		t.Fatal(err)
	}
	if r < 50 || r > 200 {
		t.Errorf("resolving power %g for 2 kV, want 50-200", r)
	}
	// Higher charge improves resolution by sqrt(z).
	r2, _ := ResolvingPower(4, 2000, 300)
	if math.Abs(r2-2*r) > 1e-9*r {
		t.Error("resolving power should scale as sqrt(z)")
	}
	if _, err := ResolvingPower(0, 2000, 300); err == nil {
		t.Error("zero charge should error")
	}
	if _, err := ResolvingPower(1, -5, 300); err == nil {
		t.Error("negative voltage should error")
	}
	if _, err := ResolvingPower(1, 100, 0); err == nil {
		t.Error("zero temperature should error")
	}
}

func TestFWHMSigmaRoundTrip(t *testing.T) {
	f := func(s uint16) bool {
		sigma := float64(s)/100 + 0.001
		return math.Abs(SigmaFromFWHM(FWHMFromSigma(sigma))-sigma) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// FWHM of a unit-sigma Gaussian is 2.3548.
	if math.Abs(FWHMFromSigma(1)-2.3548200450309493) > 1e-12 {
		t.Error("FWHM constant wrong")
	}
}

// TestSpaceChargeOnset: broadening is negligible below ~1e3 charges and
// significant above ~1e6 for typical packet geometry — reproducing the
// knee reported by Tolmachev et al. near 1e4-1e5 charges.
func TestSpaceChargeOnset(t *testing.T) {
	c := standardConditions()
	k, _ := Mobility(1000, 2, 300e-20, c)
	v := DriftVelocity(k, c)
	td, _ := DriftTime(k, 1.0, c)
	diff := DiffusionSigmaTime(DiffusionCoefficient(k, 2, c.TempK), td, v)

	sigmaAt := func(q float64) float64 {
		sc := SpaceCharge{Charges: q, InitialRadius: 1e-3, InitialLength: 5e-3}
		return sc.SigmaTime(k, td, v)
	}
	if s := sigmaAt(1e3); s > diff/4 {
		t.Errorf("space charge at 1e3 charges (%g) should be small vs diffusion (%g)", s, diff)
	}
	if s := sigmaAt(1e7); s < diff {
		t.Errorf("space charge at 1e7 charges (%g) should dominate diffusion (%g)", s, diff)
	}
	// Monotone nondecreasing in charge.
	prev := 0.0
	for _, q := range []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7} {
		s := sigmaAt(q)
		if s < prev {
			t.Errorf("space charge sigma decreased at %g charges", q)
		}
		prev = s
	}
}

func TestSpaceChargeDegenerate(t *testing.T) {
	sc := SpaceCharge{}
	if sc.SigmaTime(1e-4, 0.03, 30) != 0 {
		t.Error("zero-charge packet should add no broadening")
	}
	sc2 := SpaceCharge{Charges: 1e5, InitialRadius: 1e-3}
	if sc2.SigmaTime(1e-4, 0, 30) != 0 || sc2.SigmaTime(1e-4, 0.03, 0) != 0 {
		t.Error("degenerate drift should add no broadening")
	}
}

func TestTotalSigmaTimeQuadrature(t *testing.T) {
	got := TotalSigmaTime(math.Sqrt(12)*3, 4, 0)
	if math.Abs(got-5) > 1e-12 {
		t.Errorf("quadrature 3,4 = %g, want 5", got)
	}
	if TotalSigmaTime(0, 0, 0) != 0 {
		t.Error("all-zero contributions should give 0")
	}
}

func TestEffectiveResolvingPower(t *testing.T) {
	r := EffectiveResolvingPower(0.0235482, SigmaFromFWHM(0.0235482)/1) // td / fwhm with fwhm == td
	if math.Abs(r-1) > 1e-9 {
		t.Errorf("R = %g, want 1", r)
	}
	if !math.IsInf(EffectiveResolvingPower(1, 0), 1) {
		t.Error("zero sigma should give infinite R")
	}
}

// TestLowFieldRatio: the standard drift tube should operate in the low-field
// regime (E/N of a few Townsend at most).
func TestLowFieldRatio(t *testing.T) {
	r := LowFieldRatio(standardConditions())
	if r <= 0 || r > 20 {
		t.Errorf("E/N = %g Td, want O(1-20)", r)
	}
	// E/N doubles with field.
	c := standardConditions()
	c.FieldVPerM *= 2
	if math.Abs(LowFieldRatio(c)-2*r) > 1e-9*r {
		t.Error("E/N not proportional to field")
	}
}

// TestDriftTimeOrderingByCCS: larger CCS means longer drift time — the
// separation principle of IMS.
func TestDriftTimeOrderingByCCS(t *testing.T) {
	c := standardConditions()
	prev := 0.0
	for _, ccs := range []float64{200e-20, 300e-20, 450e-20, 600e-20} {
		k, _ := Mobility(1200, 2, ccs, c)
		td, _ := DriftTime(k, 1.0, c)
		if td <= prev {
			t.Fatalf("drift time not increasing with CCS at %g", ccs)
		}
		prev = td
	}
}

func BenchmarkMobility(b *testing.B) {
	c := standardConditions()
	for i := 0; i < b.N; i++ {
		if _, err := Mobility(1000, 2, 300e-20, c); err != nil {
			b.Fatal(err)
		}
	}
}
