// multiframe.go is the cross-frame batched decode used by the acqserver
// coalescer: several frames — typically same-order frames from different
// client sessions — are decoded as one concatenated column space, with
// column-block tiles spanning frame boundaries.  A batch of narrow frames
// therefore fills full-width tiles and pays one DecodeBatch call per tile
// instead of one short call per frame, amortizing the blocked kernel's
// fixed costs across sessions.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/instrument"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// FramePair couples one source frame with its caller-owned destination
// (same geometry, typically from an instrument.FramePool).
type FramePair struct {
	Dst, Src *instrument.Frame
}

// frameSpan locates one pair in the concatenated column space.
type frameSpan struct {
	pair  FramePair
	start int // first global column
}

// DeconvolveFramesIntoContext deconvolves every pair's Src into its Dst,
// treating the pairs as one concatenated column space: workers claim
// DefaultBlockColumns-wide global column blocks with one atomic increment
// each, and a block that straddles a frame boundary gathers its lanes from
// every overlapped frame into one tile before the single DecodeBatch call.
// All sources must share the decoder's drift-bin count; TOF widths may
// differ per frame.  Cancellation stops every worker within one block.  On
// error the destination frames hold partial results and must not be used.
func DeconvolveFramesIntoContext(ctx context.Context, pairs []FramePair, newDecoder DecoderFactory, workers int, reg *telemetry.Registry) error {
	if len(pairs) == 0 {
		return nil
	}
	if newDecoder == nil {
		return fmt.Errorf("pipeline: nil decoder factory")
	}
	spans := make([]frameSpan, len(pairs))
	total := 0
	for i, p := range pairs {
		if p.Src == nil || p.Dst == nil {
			return fmt.Errorf("pipeline: nil frame in pair %d", i)
		}
		if p.Dst.DriftBins != p.Src.DriftBins || p.Dst.TOFBins != p.Src.TOFBins {
			return fmt.Errorf("pipeline: pair %d dst %dx%d != src %dx%d",
				i, p.Dst.DriftBins, p.Dst.TOFBins, p.Src.DriftBins, p.Src.TOFBins)
		}
		if p.Src.DriftBins != pairs[0].Src.DriftBins {
			return fmt.Errorf("pipeline: pair %d drift bins %d != pair 0's %d",
				i, p.Src.DriftBins, pairs[0].Src.DriftBins)
		}
		spans[i] = frameSpan{pair: p, start: total}
		total += p.Src.TOFBins
	}
	block := DefaultBlockColumns
	blocks := (total + block - 1) / block
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > blocks {
		workers = blocks
	}
	span := trace.SpanFromContext(ctx).Child("cpu_decode_batch")
	span.SetInt("frames", int64(len(pairs)))
	span.SetInt("columns", int64(total))
	span.SetInt("workers", int64(workers))
	defer span.End()
	m := newFrameMetrics(reg)
	m.workers.Set(float64(workers))
	var next int64 = -1
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			busy := m.workerBusy.StartSpan()
			defer busy.Stop()
			fd, err := NewFrameDecoder(newDecoder, block)
			if err != nil {
				errs <- err
				return
			}
			if fd.Len() != pairs[0].Src.DriftBins {
				errs <- fmt.Errorf("pipeline: decoder length %d != drift bins %d", fd.Len(), pairs[0].Src.DriftBins)
				return
			}
			for {
				if err := ctx.Err(); err != nil {
					errs <- err
					return
				}
				blk := int(atomic.AddInt64(&next, 1))
				if blk >= blocks {
					return
				}
				g0 := blk * block
				lanes := block
				if g0+lanes > total {
					lanes = total - g0
				}
				var start time.Time
				if m.timed() {
					start = time.Now()
				}
				if err := fd.decodeSpan(spans, g0, lanes); err != nil {
					errs <- err
					return
				}
				if m.timed() {
					m.observeBlock(time.Since(start).Nanoseconds(), lanes)
				}
				m.columns.Add(int64(lanes))
			}
		}()
	}
	wg.Wait()
	close(errs)
	var all []error
	for err := range errs {
		if err != nil {
			m.errs.Inc()
			all = append(all, err)
		}
	}
	if len(all) > 0 {
		return errors.Join(all...)
	}
	m.frames.Add(int64(len(pairs)))
	return nil
}

// decodeSpan decodes global columns [g0, g0+lanes) of the concatenated
// column space described by spans, gathering each overlapped frame's
// segment into the right lane offset of one shared tile, running the
// blocked kernel once, and scattering segments back.  Decoders without a
// blocked kernel fall back to per-column Decode across the span.
func (fd *FrameDecoder) decodeSpan(spans []frameSpan, g0, lanes int) error {
	n := fd.Len()
	// First frame overlapping g0: spans are start-ordered, batches are a
	// handful of frames, so a linear scan wins over binary search.
	i := 0
	for i+1 < len(spans) && spans[i+1].start <= g0 {
		i++
	}
	if fd.batch == nil {
		if cap(fd.col) < n {
			fd.col = make([]float64, n)
		}
		col := fd.col[:n]
		for g := g0; g < g0+lanes; g++ {
			for g >= spans[i].start+spans[i].pair.Src.TOFBins {
				i++
			}
			t := g - spans[i].start
			spans[i].pair.Src.DriftVectorInto(t, col)
			x, err := fd.dec.Decode(col)
			if err != nil {
				return err
			}
			spans[i].pair.Dst.SetDriftVector(t, x)
		}
		return nil
	}
	fd.src.Reset(n, lanes)
	fd.dst.Reset(n, lanes)
	for l0, j := 0, i; l0 < lanes; j++ {
		sp := spans[j]
		t0 := g0 + l0 - sp.start
		k := sp.pair.Src.TOFBins - t0
		if k > lanes-l0 {
			k = lanes - l0
		}
		sp.pair.Src.GatherColumnsAt(t0, k, fd.src.Data, lanes, l0)
		l0 += k
	}
	if err := fd.batch.DecodeBatch(fd.dst, fd.src); err != nil {
		return err
	}
	for l0, j := 0, i; l0 < lanes; j++ {
		sp := spans[j]
		t0 := g0 + l0 - sp.start
		k := sp.pair.Src.TOFBins - t0
		if k > lanes-l0 {
			k = lanes - l0
		}
		sp.pair.Dst.ScatterColumnsAt(t0, k, fd.dst.Data, lanes, l0)
		l0 += k
	}
	return nil
}
