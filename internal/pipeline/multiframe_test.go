// multiframe_test.go: the cross-frame batched decode must be bit-identical
// to decoding each frame alone, including when tiles straddle frame
// boundaries, on both the blocked-kernel and scalar-fallback paths.
package pipeline

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/hadamard"
	"repro/internal/instrument"
)

// scalarOnly hides a decoder's blocked kernel so tests can force the
// per-column fallback path.
type scalarOnly struct{ hadamard.Decoder }

func multiframeFixture(t *testing.T, order int, widths []int) []FramePair {
	t.Helper()
	n := 1<<order - 1
	rng := rand.New(rand.NewSource(int64(len(widths))))
	pairs := make([]FramePair, len(widths))
	for i, w := range widths {
		src := instrument.NewFrame(n, w)
		for j := range src.Data {
			src.Data[j] = rng.NormFloat64() * 300
		}
		pairs[i] = FramePair{Dst: instrument.NewFrame(n, w), Src: src}
	}
	return pairs
}

// TestDeconvolveFramesMatchesSingle pins the concatenated-column batch
// against per-frame DeconvolveFrame, bit for bit, across width mixes where
// tiles span two and three frames, for 1 and 2 workers, on both decoder
// paths.
func TestDeconvolveFramesMatchesSingle(t *testing.T) {
	const order = 5
	factories := map[string]DecoderFactory{
		"batch": func() (hadamard.Decoder, error) { return hadamard.NewFHTDecoder(order) },
		"scalar-fallback": func() (hadamard.Decoder, error) {
			d, err := hadamard.NewFHTDecoder(order)
			if err != nil {
				return nil, err
			}
			return scalarOnly{d}, nil
		},
	}
	for name, factory := range factories {
		for _, widths := range [][]int{
			{40},             // single frame, tail block
			{5, 16, 7},       // every tile spans a boundary
			{3, 3, 3, 3, 3},  // frames narrower than one tile
			{16, 32},         // aligned boundaries
			{1, 47, 2, 1, 9}, // ragged mix
		} {
			for _, workers := range []int{1, 2} {
				pairs := multiframeFixture(t, order, widths)
				if err := DeconvolveFramesIntoContext(context.Background(), pairs, factory, workers, nil); err != nil {
					t.Fatalf("%s widths %v workers %d: %v", name, widths, workers, err)
				}
				for i, p := range pairs {
					want, err := DeconvolveFrame(p.Src, factory, 1)
					if err != nil {
						t.Fatal(err)
					}
					for j, v := range p.Dst.Data {
						if v != want.Data[j] {
							t.Fatalf("%s widths %v workers %d frame %d cell %d: batch %v != single %v",
								name, widths, workers, i, j, v, want.Data[j])
						}
					}
				}
			}
		}
	}
}

// TestDeconvolveFramesValidation exercises the geometry and input guards.
func TestDeconvolveFramesValidation(t *testing.T) {
	const order = 5
	factory := func() (hadamard.Decoder, error) { return hadamard.NewFHTDecoder(order) }
	ctx := context.Background()
	if err := DeconvolveFramesIntoContext(ctx, nil, factory, 1, nil); err != nil {
		t.Fatalf("empty batch should be a no-op, got %v", err)
	}
	n := 1<<order - 1
	good := FramePair{Dst: instrument.NewFrame(n, 4), Src: instrument.NewFrame(n, 4)}
	if err := DeconvolveFramesIntoContext(ctx, []FramePair{good}, nil, 1, nil); err == nil {
		t.Error("nil factory accepted")
	}
	if err := DeconvolveFramesIntoContext(ctx, []FramePair{{Src: good.Src}}, factory, 1, nil); err == nil {
		t.Error("nil dst accepted")
	}
	mismatched := FramePair{Dst: instrument.NewFrame(n, 5), Src: instrument.NewFrame(n, 4)}
	if err := DeconvolveFramesIntoContext(ctx, []FramePair{mismatched}, factory, 1, nil); err == nil {
		t.Error("geometry mismatch accepted")
	}
	other := FramePair{Dst: instrument.NewFrame(2*n+1, 4), Src: instrument.NewFrame(2*n+1, 4)}
	if err := DeconvolveFramesIntoContext(ctx, []FramePair{good, other}, factory, 1, nil); err == nil {
		t.Error("mixed drift-bin batch accepted")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if err := DeconvolveFramesIntoContext(cancelled, []FramePair{good}, factory, 1, nil); err == nil {
		t.Error("cancelled context not surfaced")
	}
}
