// Package pipeline is the CPU-side software half of the hybrid application:
// a concurrent streaming processor that deconvolves multiplexed frames with
// a pool of workers, preserving frame order, with backpressure through
// bounded channels.  It follows the Effective Go concurrency idiom: share
// the frames by communicating them, not by locking them.
//
// Both entry points accept an optional telemetry registry; passing nil
// costs one nil check per event (see BenchmarkTelemetryOverhead in
// internal/telemetry).  Exported families: pipeline_frames_total,
// pipeline_columns_total, pipeline_errors_total, pipeline_column_decode_ns,
// pipeline_worker_busy_ns_total, pipeline_workers, and the stream-processor
// families pipeline_stream_* (see docs/OBSERVABILITY.md).
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/hadamard"
	"repro/internal/instrument"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// DecoderFactory builds one decoder per worker, so workers never share
// mutable decoder state.
type DecoderFactory func() (hadamard.Decoder, error)

// frameMetrics bundles the telemetry handles of the column-parallel
// deconvolution path; the zero value (all-nil handles) is the
// un-instrumented no-op configuration.
type frameMetrics struct {
	frames     *telemetry.Counter
	columns    *telemetry.Counter
	errs       *telemetry.Counter
	colLatency *telemetry.Histogram
	workerBusy *telemetry.Counter
	workers    *telemetry.Gauge
}

// newFrameMetrics resolves the handles once per frame; on a nil registry
// every handle is nil.
func newFrameMetrics(reg *telemetry.Registry) frameMetrics {
	return frameMetrics{
		frames:     reg.Counter("pipeline_frames_total", "frames deconvolved by the CPU pipeline"),
		columns:    reg.Counter("pipeline_columns_total", "m/z columns decoded by the CPU pipeline"),
		errs:       reg.Counter("pipeline_errors_total", "worker errors during frame deconvolution"),
		colLatency: reg.Histogram("pipeline_column_decode_ns", "per-column software decode latency, nanoseconds"),
		workerBusy: reg.Counter("pipeline_worker_busy_ns_total", "cumulative wall time workers spent decoding, nanoseconds"),
		workers:    reg.Gauge("pipeline_workers", "worker count of the most recent frame deconvolution"),
	}
}

// DeconvolveFrame deconvolves every m/z column of a frame in parallel and
// returns a new frame of recovered arrival distributions.  workers <= 0
// selects GOMAXPROCS.  It is equivalent to DeconvolveFrameWithMetrics with
// a nil registry.
func DeconvolveFrame(f *instrument.Frame, newDecoder DecoderFactory, workers int) (*instrument.Frame, error) {
	return DeconvolveFrameWithMetrics(f, newDecoder, workers, nil)
}

// DeconvolveFrameWithMetrics is DeconvolveFrame with per-column decode
// latency, worker utilization and error telemetry recorded into reg (nil
// reg disables instrumentation at ~zero cost).  If several workers fail,
// every distinct error is returned, joined with errors.Join — no failure
// is silently dropped.
func DeconvolveFrameWithMetrics(f *instrument.Frame, newDecoder DecoderFactory, workers int, reg *telemetry.Registry) (*instrument.Frame, error) {
	return DeconvolveFrameContext(context.Background(), f, newDecoder, workers, reg)
}

// DeconvolveFrameContext is DeconvolveFrameWithMetrics under a context:
// each worker checks for cancellation before claiming its next column, so
// a server deadline stops the frame within one column's work per worker
// and the call returns ctx.Err().
func DeconvolveFrameContext(ctx context.Context, f *instrument.Frame, newDecoder DecoderFactory, workers int, reg *telemetry.Registry) (*instrument.Frame, error) {
	if f == nil {
		return nil, fmt.Errorf("pipeline: nil frame")
	}
	if newDecoder == nil {
		return nil, fmt.Errorf("pipeline: nil decoder factory")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > f.TOFBins {
		workers = f.TOFBins
	}
	span := trace.SpanFromContext(ctx).Child("cpu_decode")
	span.SetInt("columns", int64(f.TOFBins))
	span.SetInt("workers", int64(workers))
	defer span.End()
	m := newFrameMetrics(reg)
	m.workers.Set(float64(workers))
	out := instrument.NewFrame(f.DriftBins, f.TOFBins)
	var next int64 = -1
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			busy := m.workerBusy.StartSpan()
			defer busy.Stop()
			dec, err := newDecoder()
			if err != nil {
				errs <- err
				return
			}
			if dec.Len() != f.DriftBins {
				errs <- fmt.Errorf("pipeline: decoder length %d != drift bins %d", dec.Len(), f.DriftBins)
				return
			}
			for {
				if err := ctx.Err(); err != nil {
					errs <- err
					return
				}
				t := int(atomic.AddInt64(&next, 1))
				if t >= f.TOFBins {
					return
				}
				sp := m.colLatency.Start()
				x, err := dec.Decode(f.DriftVector(t))
				sp.Stop()
				if err != nil {
					errs <- err
					return
				}
				m.columns.Inc()
				out.SetDriftVector(t, x)
			}
		}()
	}
	wg.Wait()
	close(errs)
	var all []error
	for err := range errs {
		if err != nil {
			m.errs.Inc()
			all = append(all, err)
		}
	}
	if len(all) > 0 {
		return nil, errors.Join(all...)
	}
	m.frames.Inc()
	return out, nil
}

// Job is one frame travelling through the stream processor.
type Job struct {
	Seq   int
	Frame *instrument.Frame
}

// Result pairs a processed frame with its sequence number and any error.
type Result struct {
	Seq   int
	Frame *instrument.Frame
	Err   error
}

// StreamStats reports stream-processor counters.
type StreamStats struct {
	FramesIn      int64
	FramesOut     int64
	ColumnsPerSec float64 // filled by callers who time the run
}

// StreamProcessor consumes a stream of multiplexed frames and emits
// deconvolved frames in input order, processing up to Workers frames
// concurrently (each frame itself deconvolved column-parallel by one
// worker).
type StreamProcessor struct {
	Workers    int
	NewDecoder DecoderFactory
	// Depth bounds in-flight frames (backpressure); <= 0 means 2×Workers.
	Depth int
	// Metrics, when non-nil, receives stream telemetry: frames in/out,
	// per-frame decode latency, backpressure wait time and reorder-buffer
	// peak occupancy.
	Metrics *telemetry.Registry

	stats StreamStats
}

// NewStreamProcessor validates and constructs the processor.
func NewStreamProcessor(workers int, depth int, factory DecoderFactory) (*StreamProcessor, error) {
	if factory == nil {
		return nil, fmt.Errorf("pipeline: nil decoder factory")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = 2 * workers
	}
	return &StreamProcessor{Workers: workers, NewDecoder: factory, Depth: depth}, nil
}

// Run consumes jobs from `in` until it closes, emitting ordered results on
// the returned channel.  Each worker decodes whole frames serially;
// ordering is restored with a reorder buffer sized by Depth.  A decoding
// error is delivered in its slot's Result and processing continues.
func (sp *StreamProcessor) Run(in <-chan Job) <-chan Result {
	unordered := make(chan Result, sp.Depth)
	out := make(chan Result, sp.Depth)

	reg := sp.Metrics
	framesIn := reg.Counter("pipeline_stream_frames_in_total", "frames accepted by the stream processor")
	framesOut := reg.Counter("pipeline_stream_frames_out_total", "ordered frames emitted by the stream processor")
	frameLatency := reg.Histogram("pipeline_stream_frame_decode_ns", "per-frame stream decode latency, nanoseconds")
	backpressure := reg.Histogram("pipeline_stream_backpressure_wait_ns", "time a worker spent blocked handing a result downstream, nanoseconds")
	reorderPeak := reg.Gauge("pipeline_stream_reorder_peak", "peak occupancy of the reorder buffer, frames")

	var wg sync.WaitGroup
	for w := 0; w < sp.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dec, err := sp.NewDecoder()
			for job := range in {
				atomic.AddInt64(&sp.stats.FramesIn, 1)
				framesIn.Inc()
				if err != nil {
					unordered <- Result{Seq: job.Seq, Err: err}
					continue
				}
				sp2 := frameLatency.Start()
				res := sp.processFrame(dec, job)
				sp2.Stop()
				wait := backpressure.Start()
				unordered <- res
				wait.Stop()
			}
		}()
	}
	go func() {
		wg.Wait()
		close(unordered)
	}()

	// Reorder by sequence number.
	go func() {
		defer close(out)
		pendingMap := map[int]Result{}
		nextSeq := 0
		for r := range unordered {
			pendingMap[r.Seq] = r
			reorderPeak.SetMax(float64(len(pendingMap)))
			for {
				res, ok := pendingMap[nextSeq]
				if !ok {
					break
				}
				delete(pendingMap, nextSeq)
				atomic.AddInt64(&sp.stats.FramesOut, 1)
				framesOut.Inc()
				out <- res
				nextSeq++
			}
		}
		// Flush any stragglers (non-contiguous sequence numbers).
		for len(pendingMap) > 0 {
			min := -1
			for s := range pendingMap {
				if min < 0 || s < min {
					min = s
				}
			}
			res := pendingMap[min]
			delete(pendingMap, min)
			atomic.AddInt64(&sp.stats.FramesOut, 1)
			framesOut.Inc()
			out <- res
		}
	}()
	return out
}

func (sp *StreamProcessor) processFrame(dec hadamard.Decoder, job Job) Result {
	f := job.Frame
	if f == nil {
		return Result{Seq: job.Seq, Err: fmt.Errorf("pipeline: nil frame in job %d", job.Seq)}
	}
	if dec.Len() != f.DriftBins {
		return Result{Seq: job.Seq, Err: fmt.Errorf("pipeline: decoder length %d != drift bins %d", dec.Len(), f.DriftBins)}
	}
	out := instrument.NewFrame(f.DriftBins, f.TOFBins)
	for t := 0; t < f.TOFBins; t++ {
		x, err := dec.Decode(f.DriftVector(t))
		if err != nil {
			return Result{Seq: job.Seq, Err: err}
		}
		out.SetDriftVector(t, x)
	}
	return Result{Seq: job.Seq, Frame: out}
}

// Stats returns a snapshot of the counters.
func (sp *StreamProcessor) Stats() StreamStats {
	return StreamStats{
		FramesIn:  atomic.LoadInt64(&sp.stats.FramesIn),
		FramesOut: atomic.LoadInt64(&sp.stats.FramesOut),
	}
}
