// Package pipeline is the CPU-side software half of the hybrid application:
// a concurrent streaming processor that deconvolves multiplexed frames with
// a pool of workers, preserving frame order, with backpressure through
// bounded channels.  It follows the Effective Go concurrency idiom: share
// the frames by communicating them, not by locking them.
//
// Frames are decoded in column blocks (DefaultBlockColumns m/z columns at a
// time) through hadamard.BatchDecoder when the configured decoder supports
// it: workers claim whole blocks with one atomic increment, gather the
// block into a lane-contiguous tile, run the blocked kernel, and scatter
// the result back — no per-column allocation and ~B× less claim contention
// than the per-column scheme (see docs/PERFORMANCE.md).
//
// Both entry points accept an optional telemetry registry; passing nil
// costs one nil check per event (see BenchmarkTelemetryOverhead in
// internal/telemetry).  Exported families: pipeline_frames_total,
// pipeline_columns_total, pipeline_errors_total, pipeline_block_decode_ns,
// pipeline_column_decode_ns, pipeline_worker_busy_ns_total,
// pipeline_workers, and the stream-processor families pipeline_stream_*
// (see docs/OBSERVABILITY.md).
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hadamard"
	"repro/internal/instrument"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// DefaultBlockColumns is the column-block width of the batched decode
// path: the number of m/z columns gathered into one lane-contiguous tile
// per claim.  16 lanes keep an order-9 work tile (512 rows × 16 lanes ×
// 8 B = 64 KiB) inside L2 while amortizing index arithmetic and the
// atomic claim over the block.
const DefaultBlockColumns = 16

// DecoderFactory builds one decoder per worker, so workers never share
// mutable decoder state.
type DecoderFactory func() (hadamard.Decoder, error)

// frameMetrics bundles the telemetry handles of the column-parallel
// deconvolution path; the zero value (all-nil handles) is the
// un-instrumented no-op configuration.
type frameMetrics struct {
	frames       *telemetry.Counter
	columns      *telemetry.Counter
	errs         *telemetry.Counter
	blockLatency *telemetry.Histogram
	colLatency   *telemetry.Histogram
	workerBusy   *telemetry.Counter
	workers      *telemetry.Gauge
}

// newFrameMetrics resolves the handles once per frame; on a nil registry
// every handle is nil.
func newFrameMetrics(reg *telemetry.Registry) frameMetrics {
	return frameMetrics{
		frames:       reg.Counter("pipeline_frames_total", "frames deconvolved by the CPU pipeline"),
		columns:      reg.Counter("pipeline_columns_total", "m/z columns decoded by the CPU pipeline"),
		errs:         reg.Counter("pipeline_errors_total", "worker errors during frame deconvolution"),
		blockLatency: reg.Histogram("pipeline_block_decode_ns", "per-block software decode latency, nanoseconds"),
		colLatency:   reg.Histogram("pipeline_column_decode_ns", "per-column software decode latency, nanoseconds"),
		workerBusy:   reg.Counter("pipeline_worker_busy_ns_total", "cumulative wall time workers spent decoding, nanoseconds"),
		workers:      reg.Gauge("pipeline_workers", "worker count of the most recent frame deconvolution"),
	}
}

// timed reports whether block decodes need a clock read at all; with a
// nil registry both latency handles are nil and timing is skipped.
func (m *frameMetrics) timed() bool {
	return m.blockLatency != nil || m.colLatency != nil
}

// observeBlock records one decoded block: one observation in the block
// histogram and lanes amortized observations in the per-column histogram,
// so per-column consumers (EXPERIMENTS E3, the fpga-pipeline example) keep
// a count equal to columns decoded.
func (m *frameMetrics) observeBlock(ns int64, lanes int) {
	m.blockLatency.Observe(float64(ns))
	perCol := float64(ns) / float64(lanes)
	for i := 0; i < lanes; i++ {
		m.colLatency.Observe(perCol)
	}
}

// FrameDecoder is a reusable per-worker frame decoding engine: one decoder
// plus the column-block tiles it decodes through.  When the decoder
// implements hadamard.BatchDecoder, DecodeColumns runs the blocked
// gather → DecodeBatch → scatter path with zero steady-state allocation;
// otherwise it falls back to per-column Decode calls.  A FrameDecoder
// holds mutable scratch and must not be shared between goroutines.
type FrameDecoder struct {
	dec   hadamard.Decoder
	batch hadamard.BatchDecoder // nil when dec has no blocked kernel
	block int
	src   *hadamard.ColumnBlock
	dst   *hadamard.ColumnBlock
	col   []float64 // per-column staging for the fallback path
}

// NewFrameDecoder builds a FrameDecoder from one factory invocation.
// block <= 0 selects DefaultBlockColumns.
func NewFrameDecoder(factory DecoderFactory, block int) (*FrameDecoder, error) {
	if factory == nil {
		return nil, fmt.Errorf("pipeline: nil decoder factory")
	}
	if block <= 0 {
		block = DefaultBlockColumns
	}
	dec, err := factory()
	if err != nil {
		return nil, err
	}
	fd := &FrameDecoder{dec: dec, block: block}
	if b, ok := dec.(hadamard.BatchDecoder); ok {
		fd.batch = b
		fd.src = hadamard.NewColumnBlock(dec.Len(), block)
		fd.dst = hadamard.NewColumnBlock(dec.Len(), block)
	}
	return fd, nil
}

// Len reports the decoder's waveform length (frame drift bins).
func (fd *FrameDecoder) Len() int { return fd.dec.Len() }

// BlockColumns reports the column-block width.
func (fd *FrameDecoder) BlockColumns() int { return fd.block }

// DecodeColumns decodes columns [t0, t0+lanes) of src into the same
// columns of dst.  On the batch path this allocates nothing once the
// tiles are warm; lanes may be any value in [1, BlockColumns] (shorter
// tail blocks reuse the same tiles).
func (fd *FrameDecoder) DecodeColumns(dst, src *instrument.Frame, t0, lanes int) error {
	if src == nil || dst == nil {
		return fmt.Errorf("pipeline: nil frame")
	}
	n := fd.dec.Len()
	if src.DriftBins != n {
		return fmt.Errorf("pipeline: decoder length %d != drift bins %d", n, src.DriftBins)
	}
	if dst.DriftBins != src.DriftBins || dst.TOFBins != src.TOFBins {
		return fmt.Errorf("pipeline: dst frame %dx%d != src %dx%d",
			dst.DriftBins, dst.TOFBins, src.DriftBins, src.TOFBins)
	}
	if t0 < 0 || lanes < 1 || t0+lanes > src.TOFBins {
		return fmt.Errorf("pipeline: column range [%d,%d) outside frame of %d columns", t0, t0+lanes, src.TOFBins)
	}
	if fd.batch == nil {
		// Fallback for decoders without a blocked kernel (e.g. weighted
		// matched filters): per-column Decode, which allocates its result.
		if cap(fd.col) < n {
			fd.col = make([]float64, n)
		}
		col := fd.col[:n]
		for t := t0; t < t0+lanes; t++ {
			src.DriftVectorInto(t, col)
			x, err := fd.dec.Decode(col)
			if err != nil {
				return err
			}
			dst.SetDriftVector(t, x)
		}
		return nil
	}
	fd.src.Reset(n, lanes)
	fd.dst.Reset(n, lanes)
	src.GatherColumns(t0, lanes, fd.src.Data)
	if err := fd.batch.DecodeBatch(fd.dst, fd.src); err != nil {
		return err
	}
	dst.ScatterColumns(t0, lanes, fd.dst.Data)
	return nil
}

// DeconvolveFrame deconvolves every m/z column of a frame in parallel and
// returns a new frame of recovered arrival distributions.  workers <= 0
// selects GOMAXPROCS.  It is equivalent to DeconvolveFrameWithMetrics with
// a nil registry.
func DeconvolveFrame(f *instrument.Frame, newDecoder DecoderFactory, workers int) (*instrument.Frame, error) {
	return DeconvolveFrameWithMetrics(f, newDecoder, workers, nil)
}

// DeconvolveFrameWithMetrics is DeconvolveFrame with decode latency,
// worker utilization and error telemetry recorded into reg (nil reg
// disables instrumentation at ~zero cost).  If several workers fail,
// every distinct error is returned, joined with errors.Join — no failure
// is silently dropped.
func DeconvolveFrameWithMetrics(f *instrument.Frame, newDecoder DecoderFactory, workers int, reg *telemetry.Registry) (*instrument.Frame, error) {
	return DeconvolveFrameContext(context.Background(), f, newDecoder, workers, reg)
}

// DeconvolveFrameContext is DeconvolveFrameWithMetrics under a context:
// each worker checks for cancellation before claiming its next column
// block, so a server deadline stops the frame within one block's work per
// worker and the call returns ctx.Err().
func DeconvolveFrameContext(ctx context.Context, f *instrument.Frame, newDecoder DecoderFactory, workers int, reg *telemetry.Registry) (*instrument.Frame, error) {
	if f == nil {
		return nil, fmt.Errorf("pipeline: nil frame")
	}
	out := instrument.NewFrame(f.DriftBins, f.TOFBins)
	if err := DeconvolveFrameIntoContext(ctx, out, f, newDecoder, workers, reg); err != nil {
		return nil, err
	}
	return out, nil
}

// DeconvolveFrameIntoContext deconvolves f into the caller-owned dst frame
// (same geometry as f, typically from an instrument.FramePool), so the
// steady-state serving path allocates no output frame.  Workers claim
// whole column blocks of DefaultBlockColumns columns with one atomic
// increment each and decode them through per-worker FrameDecoders.
// workers <= 0 selects GOMAXPROCS; the count is clamped to the number of
// blocks.  On error dst holds partial results and must not be used.
func DeconvolveFrameIntoContext(ctx context.Context, dst, f *instrument.Frame, newDecoder DecoderFactory, workers int, reg *telemetry.Registry) error {
	if f == nil || dst == nil {
		return fmt.Errorf("pipeline: nil frame")
	}
	if dst.DriftBins != f.DriftBins || dst.TOFBins != f.TOFBins {
		return fmt.Errorf("pipeline: dst frame %dx%d != src %dx%d", dst.DriftBins, dst.TOFBins, f.DriftBins, f.TOFBins)
	}
	if newDecoder == nil {
		return fmt.Errorf("pipeline: nil decoder factory")
	}
	block := DefaultBlockColumns
	blocks := (f.TOFBins + block - 1) / block
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > blocks {
		workers = blocks
	}
	span := trace.SpanFromContext(ctx).Child("cpu_decode")
	span.SetInt("columns", int64(f.TOFBins))
	span.SetInt("workers", int64(workers))
	span.SetInt("block_columns", int64(block))
	defer span.End()
	m := newFrameMetrics(reg)
	m.workers.Set(float64(workers))
	var next int64 = -1
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			busy := m.workerBusy.StartSpan()
			defer busy.Stop()
			fd, err := NewFrameDecoder(newDecoder, block)
			if err != nil {
				errs <- err
				return
			}
			if fd.Len() != f.DriftBins {
				errs <- fmt.Errorf("pipeline: decoder length %d != drift bins %d", fd.Len(), f.DriftBins)
				return
			}
			for {
				if err := ctx.Err(); err != nil {
					errs <- err
					return
				}
				blk := int(atomic.AddInt64(&next, 1))
				if blk >= blocks {
					return
				}
				t0 := blk * block
				lanes := block
				if t0+lanes > f.TOFBins {
					lanes = f.TOFBins - t0
				}
				var start time.Time
				if m.timed() {
					start = time.Now()
				}
				if err := fd.DecodeColumns(dst, f, t0, lanes); err != nil {
					errs <- err
					return
				}
				if m.timed() {
					m.observeBlock(time.Since(start).Nanoseconds(), lanes)
				}
				m.columns.Add(int64(lanes))
			}
		}()
	}
	wg.Wait()
	close(errs)
	var all []error
	for err := range errs {
		if err != nil {
			m.errs.Inc()
			all = append(all, err)
		}
	}
	if len(all) > 0 {
		return errors.Join(all...)
	}
	m.frames.Inc()
	return nil
}

// Job is one frame travelling through the stream processor.
type Job struct {
	Seq   int
	Frame *instrument.Frame
}

// Result pairs a processed frame with its sequence number and any error.
type Result struct {
	Seq   int
	Frame *instrument.Frame
	Err   error
}

// StreamStats reports stream-processor counters.
type StreamStats struct {
	FramesIn      int64
	FramesOut     int64
	ColumnsPerSec float64 // filled by callers who time the run
}

// StreamProcessor consumes a stream of multiplexed frames and emits
// deconvolved frames in input order, processing up to Workers frames
// concurrently (each frame itself deconvolved block-serially by one
// worker through a reusable FrameDecoder).
type StreamProcessor struct {
	Workers    int
	NewDecoder DecoderFactory
	// Depth bounds in-flight frames (backpressure); <= 0 means 2×Workers.
	Depth int
	// Metrics, when non-nil, receives stream telemetry: frames in/out,
	// per-frame decode latency, backpressure wait time and reorder-buffer
	// peak occupancy.
	Metrics *telemetry.Registry

	stats StreamStats
}

// NewStreamProcessor validates and constructs the processor.
func NewStreamProcessor(workers int, depth int, factory DecoderFactory) (*StreamProcessor, error) {
	if factory == nil {
		return nil, fmt.Errorf("pipeline: nil decoder factory")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = 2 * workers
	}
	return &StreamProcessor{Workers: workers, NewDecoder: factory, Depth: depth}, nil
}

// Run consumes jobs from `in` until it closes, emitting ordered results on
// the returned channel.  Each worker builds one FrameDecoder up front and
// decodes whole frames serially through it, so the per-frame steady state
// allocates only the output frame; ordering is restored with a reorder
// buffer sized by Depth.  A decoding error is delivered in its slot's
// Result and processing continues.
func (sp *StreamProcessor) Run(in <-chan Job) <-chan Result {
	unordered := make(chan Result, sp.Depth)
	out := make(chan Result, sp.Depth)

	reg := sp.Metrics
	framesIn := reg.Counter("pipeline_stream_frames_in_total", "frames accepted by the stream processor")
	framesOut := reg.Counter("pipeline_stream_frames_out_total", "ordered frames emitted by the stream processor")
	frameLatency := reg.Histogram("pipeline_stream_frame_decode_ns", "per-frame stream decode latency, nanoseconds")
	backpressure := reg.Histogram("pipeline_stream_backpressure_wait_ns", "time a worker spent blocked handing a result downstream, nanoseconds")
	reorderPeak := reg.Gauge("pipeline_stream_reorder_peak", "peak occupancy of the reorder buffer, frames")

	var wg sync.WaitGroup
	for w := 0; w < sp.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fd, err := NewFrameDecoder(sp.NewDecoder, DefaultBlockColumns)
			for job := range in {
				atomic.AddInt64(&sp.stats.FramesIn, 1)
				framesIn.Inc()
				if err != nil {
					unordered <- Result{Seq: job.Seq, Err: err}
					continue
				}
				sp2 := frameLatency.Start()
				res := sp.processFrame(fd, job)
				sp2.Stop()
				wait := backpressure.Start()
				unordered <- res
				wait.Stop()
			}
		}()
	}
	go func() {
		wg.Wait()
		close(unordered)
	}()

	// Reorder by sequence number.
	go func() {
		defer close(out)
		pendingMap := map[int]Result{}
		nextSeq := 0
		for r := range unordered {
			pendingMap[r.Seq] = r
			reorderPeak.SetMax(float64(len(pendingMap)))
			for {
				res, ok := pendingMap[nextSeq]
				if !ok {
					break
				}
				delete(pendingMap, nextSeq)
				atomic.AddInt64(&sp.stats.FramesOut, 1)
				framesOut.Inc()
				out <- res
				nextSeq++
			}
		}
		// Flush any stragglers (non-contiguous sequence numbers).
		for len(pendingMap) > 0 {
			min := -1
			for s := range pendingMap {
				if min < 0 || s < min {
					min = s
				}
			}
			res := pendingMap[min]
			delete(pendingMap, min)
			atomic.AddInt64(&sp.stats.FramesOut, 1)
			framesOut.Inc()
			out <- res
		}
	}()
	return out
}

func (sp *StreamProcessor) processFrame(fd *FrameDecoder, job Job) Result {
	f := job.Frame
	if f == nil {
		return Result{Seq: job.Seq, Err: fmt.Errorf("pipeline: nil frame in job %d", job.Seq)}
	}
	if fd.Len() != f.DriftBins {
		return Result{Seq: job.Seq, Err: fmt.Errorf("pipeline: decoder length %d != drift bins %d", fd.Len(), f.DriftBins)}
	}
	out := instrument.NewFrame(f.DriftBins, f.TOFBins)
	for t0 := 0; t0 < f.TOFBins; t0 += fd.BlockColumns() {
		lanes := fd.BlockColumns()
		if t0+lanes > f.TOFBins {
			lanes = f.TOFBins - t0
		}
		if err := fd.DecodeColumns(out, f, t0, lanes); err != nil {
			return Result{Seq: job.Seq, Err: err}
		}
	}
	return Result{Seq: job.Seq, Frame: out}
}

// Stats returns a snapshot of the counters.
func (sp *StreamProcessor) Stats() StreamStats {
	return StreamStats{
		FramesIn:  atomic.LoadInt64(&sp.stats.FramesIn),
		FramesOut: atomic.LoadInt64(&sp.stats.FramesOut),
	}
}
