// Package pipeline is the CPU-side software half of the hybrid application:
// a concurrent streaming processor that deconvolves multiplexed frames with
// a pool of workers, preserving frame order, with backpressure through
// bounded channels.  It follows the Effective Go concurrency idiom: share
// the frames by communicating them, not by locking them.
package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/hadamard"
	"repro/internal/instrument"
)

// DecoderFactory builds one decoder per worker, so workers never share
// mutable decoder state.
type DecoderFactory func() (hadamard.Decoder, error)

// DeconvolveFrame deconvolves every m/z column of a frame in parallel and
// returns a new frame of recovered arrival distributions.  workers <= 0
// selects GOMAXPROCS.
func DeconvolveFrame(f *instrument.Frame, newDecoder DecoderFactory, workers int) (*instrument.Frame, error) {
	if f == nil {
		return nil, fmt.Errorf("pipeline: nil frame")
	}
	if newDecoder == nil {
		return nil, fmt.Errorf("pipeline: nil decoder factory")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > f.TOFBins {
		workers = f.TOFBins
	}
	out := instrument.NewFrame(f.DriftBins, f.TOFBins)
	var next int64 = -1
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dec, err := newDecoder()
			if err != nil {
				errs <- err
				return
			}
			if dec.Len() != f.DriftBins {
				errs <- fmt.Errorf("pipeline: decoder length %d != drift bins %d", dec.Len(), f.DriftBins)
				return
			}
			for {
				t := int(atomic.AddInt64(&next, 1))
				if t >= f.TOFBins {
					return
				}
				x, err := dec.Decode(f.DriftVector(t))
				if err != nil {
					errs <- err
					return
				}
				out.SetDriftVector(t, x)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Job is one frame travelling through the stream processor.
type Job struct {
	Seq   int
	Frame *instrument.Frame
}

// Result pairs a processed frame with its sequence number and any error.
type Result struct {
	Seq   int
	Frame *instrument.Frame
	Err   error
}

// StreamStats reports stream-processor counters.
type StreamStats struct {
	FramesIn      int64
	FramesOut     int64
	ColumnsPerSec float64 // filled by callers who time the run
}

// StreamProcessor consumes a stream of multiplexed frames and emits
// deconvolved frames in input order, processing up to Workers frames
// concurrently (each frame itself deconvolved column-parallel by one
// worker).
type StreamProcessor struct {
	Workers    int
	NewDecoder DecoderFactory
	// Depth bounds in-flight frames (backpressure); <= 0 means 2×Workers.
	Depth int

	stats StreamStats
}

// NewStreamProcessor validates and constructs the processor.
func NewStreamProcessor(workers int, depth int, factory DecoderFactory) (*StreamProcessor, error) {
	if factory == nil {
		return nil, fmt.Errorf("pipeline: nil decoder factory")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = 2 * workers
	}
	return &StreamProcessor{Workers: workers, NewDecoder: factory, Depth: depth}, nil
}

// Run consumes jobs from `in` until it closes, emitting ordered results on
// the returned channel.  Each worker decodes whole frames serially;
// ordering is restored with a reorder buffer sized by Depth.  A decoding
// error is delivered in its slot's Result and processing continues.
func (sp *StreamProcessor) Run(in <-chan Job) <-chan Result {
	unordered := make(chan Result, sp.Depth)
	out := make(chan Result, sp.Depth)

	var wg sync.WaitGroup
	for w := 0; w < sp.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dec, err := sp.NewDecoder()
			for job := range in {
				atomic.AddInt64(&sp.stats.FramesIn, 1)
				if err != nil {
					unordered <- Result{Seq: job.Seq, Err: err}
					continue
				}
				res := sp.processFrame(dec, job)
				unordered <- res
			}
		}()
	}
	go func() {
		wg.Wait()
		close(unordered)
	}()

	// Reorder by sequence number.
	go func() {
		defer close(out)
		pendingMap := map[int]Result{}
		nextSeq := 0
		for r := range unordered {
			pendingMap[r.Seq] = r
			for {
				res, ok := pendingMap[nextSeq]
				if !ok {
					break
				}
				delete(pendingMap, nextSeq)
				atomic.AddInt64(&sp.stats.FramesOut, 1)
				out <- res
				nextSeq++
			}
		}
		// Flush any stragglers (non-contiguous sequence numbers).
		for len(pendingMap) > 0 {
			min := -1
			for s := range pendingMap {
				if min < 0 || s < min {
					min = s
				}
			}
			res := pendingMap[min]
			delete(pendingMap, min)
			atomic.AddInt64(&sp.stats.FramesOut, 1)
			out <- res
		}
	}()
	return out
}

func (sp *StreamProcessor) processFrame(dec hadamard.Decoder, job Job) Result {
	f := job.Frame
	if f == nil {
		return Result{Seq: job.Seq, Err: fmt.Errorf("pipeline: nil frame in job %d", job.Seq)}
	}
	if dec.Len() != f.DriftBins {
		return Result{Seq: job.Seq, Err: fmt.Errorf("pipeline: decoder length %d != drift bins %d", dec.Len(), f.DriftBins)}
	}
	out := instrument.NewFrame(f.DriftBins, f.TOFBins)
	for t := 0; t < f.TOFBins; t++ {
		x, err := dec.Decode(f.DriftVector(t))
		if err != nil {
			return Result{Seq: job.Seq, Err: err}
		}
		out.SetDriftVector(t, x)
	}
	return Result{Seq: job.Seq, Frame: out}
}

// Stats returns a snapshot of the counters.
func (sp *StreamProcessor) Stats() StreamStats {
	return StreamStats{
		FramesIn:  atomic.LoadInt64(&sp.stats.FramesIn),
		FramesOut: atomic.LoadInt64(&sp.stats.FramesOut),
	}
}
