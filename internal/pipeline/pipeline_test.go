package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/hadamard"
	"repro/internal/instrument"
	"repro/internal/prs"
)

// encodedFrame builds a synthetic multiplexed frame whose every m/z column
// is an encoding of a known arrival distribution, so deconvolution has an
// exact expected output.
func encodedFrame(t testing.TB, order, tofBins int, seed int64) (*instrument.Frame, *instrument.Frame) {
	t.Helper()
	s := prs.MustMSequence(order)
	n := len(s)
	rng := rand.New(rand.NewSource(seed))
	truth := instrument.NewFrame(n, tofBins)
	enc := instrument.NewFrame(n, tofBins)
	for c := 0; c < tofBins; c++ {
		x := make([]float64, n)
		for k := 0; k < 3; k++ {
			x[rng.Intn(n)] = 50 + rng.Float64()*200
		}
		y, err := hadamard.Encode(s, x)
		if err != nil {
			t.Fatal(err)
		}
		truth.SetDriftVector(c, x)
		enc.SetDriftVector(c, y)
	}
	return enc, truth
}

func fhtFactory(order int) DecoderFactory {
	return func() (hadamard.Decoder, error) { return hadamard.NewFHTDecoder(order) }
}

func framesClose(a, b *instrument.Frame, tol float64) bool {
	if a.DriftBins != b.DriftBins || a.TOFBins != b.TOFBins {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestDeconvolveFrameRecoversTruth(t *testing.T) {
	enc, truth := encodedFrame(t, 6, 32, 60)
	for _, workers := range []int{1, 2, 4, 0} {
		got, err := DeconvolveFrame(enc, fhtFactory(6), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !framesClose(got, truth, 1e-6) {
			t.Errorf("workers=%d: deconvolved frame does not match truth", workers)
		}
	}
}

func TestDeconvolveFrameErrors(t *testing.T) {
	if _, err := DeconvolveFrame(nil, fhtFactory(6), 1); err == nil {
		t.Error("nil frame")
	}
	enc, _ := encodedFrame(t, 6, 4, 61)
	if _, err := DeconvolveFrame(enc, nil, 1); err == nil {
		t.Error("nil factory")
	}
	// Wrong decoder length.
	if _, err := DeconvolveFrame(enc, fhtFactory(5), 2); err == nil {
		t.Error("mismatched decoder length should fail")
	}
	// Factory error propagates.
	failing := func() (hadamard.Decoder, error) { return nil, fmt.Errorf("boom") }
	if _, err := DeconvolveFrame(enc, failing, 2); err == nil {
		t.Error("factory error should propagate")
	}
}

func TestDeconvolveFrameMoreWorkersThanColumns(t *testing.T) {
	enc, truth := encodedFrame(t, 5, 3, 62)
	got, err := DeconvolveFrame(enc, fhtFactory(5), 64)
	if err != nil {
		t.Fatal(err)
	}
	if !framesClose(got, truth, 1e-6) {
		t.Error("oversubscribed workers broke deconvolution")
	}
}

func TestStreamProcessorOrdering(t *testing.T) {
	const nFrames = 12
	sp, err := NewStreamProcessor(4, 4, fhtFactory(6))
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan Job)
	out := sp.Run(in)
	truths := make([]*instrument.Frame, nFrames)
	go func() {
		for i := 0; i < nFrames; i++ {
			enc, truth := encodedFrame(t, 6, 8, int64(100+i))
			truths[i] = truth
			in <- Job{Seq: i, Frame: enc}
		}
		close(in)
	}()
	seen := 0
	for r := range out {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Seq != seen {
			t.Fatalf("result %d arrived out of order (want %d)", r.Seq, seen)
		}
		if !framesClose(r.Frame, truths[r.Seq], 1e-6) {
			t.Fatalf("frame %d incorrect", r.Seq)
		}
		seen++
	}
	if seen != nFrames {
		t.Fatalf("got %d frames, want %d", seen, nFrames)
	}
	st := sp.Stats()
	if st.FramesIn != nFrames || st.FramesOut != nFrames {
		t.Errorf("stats %+v", st)
	}
}

func TestStreamProcessorErrorInStream(t *testing.T) {
	sp, _ := NewStreamProcessor(2, 2, fhtFactory(6))
	in := make(chan Job, 3)
	enc, _ := encodedFrame(t, 6, 4, 200)
	in <- Job{Seq: 0, Frame: enc}
	in <- Job{Seq: 1, Frame: nil} // broken job
	enc2, _ := encodedFrame(t, 6, 4, 201)
	in <- Job{Seq: 2, Frame: enc2}
	close(in)
	var errs, oks int
	for r := range sp.Run(in) {
		if r.Err != nil {
			errs++
		} else {
			oks++
		}
	}
	if errs != 1 || oks != 2 {
		t.Errorf("errs %d oks %d, want 1 and 2", errs, oks)
	}
}

func TestStreamProcessorFactoryError(t *testing.T) {
	sp, _ := NewStreamProcessor(1, 1, func() (hadamard.Decoder, error) { return nil, fmt.Errorf("no decoder") })
	in := make(chan Job, 1)
	enc, _ := encodedFrame(t, 6, 2, 300)
	in <- Job{Seq: 0, Frame: enc}
	close(in)
	r := <-sp.Run(in)
	if r.Err == nil {
		t.Error("factory error should surface in result")
	}
}

func TestStreamProcessorWrongGeometry(t *testing.T) {
	sp, _ := NewStreamProcessor(1, 1, fhtFactory(5))
	in := make(chan Job, 1)
	enc, _ := encodedFrame(t, 6, 2, 301) // 63 bins, decoder expects 31
	in <- Job{Seq: 0, Frame: enc}
	close(in)
	r := <-sp.Run(in)
	if r.Err == nil {
		t.Error("geometry mismatch should surface in result")
	}
}

func TestNewStreamProcessorDefaults(t *testing.T) {
	sp, err := NewStreamProcessor(0, 0, fhtFactory(6))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Workers < 1 || sp.Depth < 2 {
		t.Errorf("defaults not applied: workers %d depth %d", sp.Workers, sp.Depth)
	}
	if _, err := NewStreamProcessor(1, 1, nil); err == nil {
		t.Error("nil factory should fail")
	}
}

func BenchmarkDeconvolveFrameSerial(b *testing.B) {
	enc, _ := encodedFrame(b, 9, 64, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DeconvolveFrame(enc, fhtFactory(9), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeconvolveFrameParallel(b *testing.B) {
	enc, _ := encodedFrame(b, 9, 64, 401)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DeconvolveFrame(enc, fhtFactory(9), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// countdownCtx reports Canceled starting with the (after+1)-th Err call —
// a deterministic stand-in for a deadline firing mid-frame.
type countdownCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func TestDeconvolveFrameContextPreCancelled(t *testing.T) {
	f, _ := encodedFrame(t, 5, 8, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := DeconvolveFrameContext(ctx, f, func() (hadamard.Decoder, error) {
		return hadamard.NewFHTDecoder(5)
	}, 2, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestDeconvolveFrameContextMidRun(t *testing.T) {
	f, _ := encodedFrame(t, 5, 64, 1)
	// One worker: its first pre-column check passes, the second cancels,
	// so the frame is abandoned after exactly one column of work.
	ctx := &countdownCtx{Context: context.Background(), after: 1}
	out, err := DeconvolveFrameContext(ctx, f, func() (hadamard.Decoder, error) {
		return hadamard.NewFHTDecoder(5)
	}, 1, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled mid-frame, got %v", err)
	}
	if out != nil {
		t.Fatal("cancelled deconvolution returned a frame")
	}
}

func TestDeconvolveFrameIntoContextRecoversTruth(t *testing.T) {
	enc, truth := encodedFrame(t, 6, 37, 63) // 37 columns: odd tail block
	var pool instrument.FramePool
	for _, workers := range []int{1, 3, 0} {
		dst := pool.Get(enc.DriftBins, enc.TOFBins)
		if err := DeconvolveFrameIntoContext(context.Background(), dst, enc, fhtFactory(6), workers, nil); err != nil {
			t.Fatal(err)
		}
		if !framesClose(dst, truth, 1e-6) {
			t.Errorf("workers=%d: deconvolved frame does not match truth", workers)
		}
		pool.Put(dst)
	}
}

func TestDeconvolveFrameIntoContextErrors(t *testing.T) {
	enc, _ := encodedFrame(t, 5, 4, 64)
	dst := instrument.NewFrame(enc.DriftBins, enc.TOFBins)
	if err := DeconvolveFrameIntoContext(context.Background(), nil, enc, fhtFactory(5), 1, nil); err == nil {
		t.Error("nil dst accepted")
	}
	if err := DeconvolveFrameIntoContext(context.Background(), dst, nil, fhtFactory(5), 1, nil); err == nil {
		t.Error("nil src accepted")
	}
	bad := instrument.NewFrame(enc.DriftBins, enc.TOFBins+1)
	if err := DeconvolveFrameIntoContext(context.Background(), bad, enc, fhtFactory(5), 1, nil); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

// TestFrameDecoderFallbackMatchesBatch routes the same frame through a
// WeightedDecoder (no blocked kernel — exercises the per-column fallback)
// and the batched FHT path; with unit weights the outputs must agree.
func TestFrameDecoderFallbackMatchesBatch(t *testing.T) {
	enc, truth := encodedFrame(t, 6, 19, 65)
	weighted := func() (hadamard.Decoder, error) {
		base, err := hadamard.NewFHTDecoder(6)
		if err != nil {
			return nil, err
		}
		return hadamard.NewWeightedDecoder(base), nil
	}
	fd, err := NewFrameDecoder(weighted, DefaultBlockColumns)
	if err != nil {
		t.Fatal(err)
	}
	out := instrument.NewFrame(enc.DriftBins, enc.TOFBins)
	for t0 := 0; t0 < enc.TOFBins; t0 += fd.BlockColumns() {
		lanes := fd.BlockColumns()
		if t0+lanes > enc.TOFBins {
			lanes = enc.TOFBins - t0
		}
		if err := fd.DecodeColumns(out, enc, t0, lanes); err != nil {
			t.Fatal(err)
		}
	}
	if !framesClose(out, truth, 1e-6) {
		t.Error("fallback path does not recover truth")
	}
}

func TestFrameDecoderDecodeColumnsErrors(t *testing.T) {
	fd, err := NewFrameDecoder(fhtFactory(5), 4)
	if err != nil {
		t.Fatal(err)
	}
	enc, _ := encodedFrame(t, 5, 8, 66)
	out := instrument.NewFrame(enc.DriftBins, enc.TOFBins)
	if err := fd.DecodeColumns(nil, enc, 0, 2); err == nil {
		t.Error("nil dst accepted")
	}
	if err := fd.DecodeColumns(out, enc, 6, 4); err == nil {
		t.Error("out-of-range block accepted")
	}
	if err := fd.DecodeColumns(out, enc, 0, 0); err == nil {
		t.Error("zero lanes accepted")
	}
	wrong, _ := encodedFrame(t, 6, 8, 67)
	if err := fd.DecodeColumns(instrument.NewFrame(wrong.DriftBins, wrong.TOFBins), wrong, 0, 2); err == nil {
		t.Error("decoder length mismatch accepted")
	}
	if _, err := NewFrameDecoder(nil, 4); err == nil {
		t.Error("nil factory accepted")
	}
}

// TestFrameDecoderDecodeColumnsAllocs is the pipeline-level allocation
// gate: once the tiles are warm, decoding a block into a caller-owned
// frame must not allocate.
func TestFrameDecoderDecodeColumnsAllocs(t *testing.T) {
	enc, _ := encodedFrame(t, 8, 64, 68)
	fd, err := NewFrameDecoder(fhtFactory(8), DefaultBlockColumns)
	if err != nil {
		t.Fatal(err)
	}
	out := instrument.NewFrame(enc.DriftBins, enc.TOFBins)
	if err := fd.DecodeColumns(out, enc, 0, DefaultBlockColumns); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(20, func() {
		for t0 := 0; t0 < enc.TOFBins; t0 += DefaultBlockColumns {
			if err := fd.DecodeColumns(out, enc, t0, DefaultBlockColumns); err != nil {
				t.Fatal(err)
			}
		}
	}); a != 0 {
		t.Errorf("DecodeColumns allocates %g per frame in steady state", a)
	}
}
