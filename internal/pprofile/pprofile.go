// Package pprofile is a minimal reader for the gzipped profile.proto
// format that runtime/pprof writes — just enough protobuf wire decoding
// (stdlib only, no generated code) to recover what the profiledump
// summarizer needs: per-sample values, the leaf-first function stack, and
// the pprof labels attached by pprof.Do.  It is a reader, not a writer,
// and it ignores mappings, addresses and line numbers entirely.
//
// Wire format notes: a profile is a gzipped Profile message; repeated
// scalar fields (Sample.location_id, Sample.value) are packed
// length-delimited by proto3 but may legally appear unpacked, so both
// encodings are handled.  String fields index into Profile.string_table.
package pprofile

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// ValueType names one sample value dimension, e.g. cpu/nanoseconds or
// inuse_space/bytes.
type ValueType struct {
	// Type is the dimension name ("cpu", "alloc_space", ...).
	Type string
	// Unit is the dimension unit ("nanoseconds", "bytes", "count").
	Unit string
}

// Sample is one resolved profile sample.
type Sample struct {
	// Funcs is the call stack as function names, leaf first (inlined
	// frames expanded in innermost-first order, matching profile.proto).
	Funcs []string
	// Values holds one value per Profile.SampleTypes entry.
	Values []int64
	// Labels are the sample's string-valued pprof labels (pprof.Do).
	Labels map[string]string
}

// Profile is the decoded subset of one profile.proto document.
type Profile struct {
	// SampleTypes describes the columns of every sample's Values.
	SampleTypes []ValueType
	// Samples are all samples with stacks and labels resolved.
	Samples []Sample
}

// ValueIndex returns the column index of the named sample type, or the
// last column when name is empty (the pprof default: cpu nanoseconds for
// CPU profiles, inuse_space for heap), or -1 when name is unknown.
func (p *Profile) ValueIndex(name string) int {
	if name == "" {
		return len(p.SampleTypes) - 1
	}
	for i, st := range p.SampleTypes {
		if st.Type == name {
			return i
		}
	}
	return -1
}

// errTruncated reports a message that ended mid-field.
var errTruncated = errors.New("pprofile: truncated profile")

// wire holds an in-progress protobuf message decode.
type wire struct {
	data []byte
	pos  int
}

func (b *wire) done() bool { return b.pos >= len(b.data) }

// varint decodes one base-128 varint.
func (b *wire) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if b.pos >= len(b.data) {
			return 0, errTruncated
		}
		c := b.data[b.pos]
		b.pos++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
	}
	return 0, errors.New("pprofile: varint overflow")
}

// tag decodes one field key into (field number, wire type).
func (b *wire) tag() (int, int, error) {
	k, err := b.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(k >> 3), int(k & 7), nil
}

// bytes decodes one length-delimited payload (wire type 2).
func (b *wire) bytes() ([]byte, error) {
	n, err := b.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(b.data)-b.pos) {
		return nil, errTruncated
	}
	out := b.data[b.pos : b.pos+int(n)]
	b.pos += int(n)
	return out, nil
}

// skip discards one field payload of the given wire type.
func (b *wire) skip(wt int) error {
	switch wt {
	case 0:
		_, err := b.varint()
		return err
	case 1:
		if len(b.data)-b.pos < 8 {
			return errTruncated
		}
		b.pos += 8
		return nil
	case 2:
		_, err := b.bytes()
		return err
	case 5:
		if len(b.data)-b.pos < 4 {
			return errTruncated
		}
		b.pos += 4
		return nil
	default:
		return fmt.Errorf("pprofile: unsupported wire type %d", wt)
	}
}

// uint64s decodes a repeated uint64 field occurrence: one packed payload
// (wire 2) or one plain varint (wire 0), appended to dst.
func (b *wire) uint64s(wt int, dst []uint64) ([]uint64, error) {
	if wt == 0 {
		v, err := b.varint()
		if err != nil {
			return nil, err
		}
		return append(dst, v), nil
	}
	payload, err := b.bytes()
	if err != nil {
		return nil, err
	}
	packed := wire{data: payload}
	for !packed.done() {
		v, err := packed.varint()
		if err != nil {
			return nil, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// rawLabel is Label before string-table resolution.
type rawLabel struct{ key, str int64 }

// rawSample is Sample before location/string resolution.
type rawSample struct {
	locIDs []uint64
	values []uint64
	labels []rawLabel
}

// Parse reads one gzipped profile.proto document.
func Parse(r io.Reader) (*Profile, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("pprofile: %w", err)
	}
	defer zr.Close()
	data, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("pprofile: %w", err)
	}

	var (
		strings   []string
		sampleVTs [][2]int64 // (type idx, unit idx)
		samples   []rawSample
		locFuncs  = map[uint64][]uint64{} // location id -> function ids, innermost first
		funcNames = map[uint64]int64{}    // function id -> name string index
		top       = wire{data: data}
	)
	for !top.done() {
		field, wt, err := top.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // sample_type: ValueType
			msg, err := top.bytes()
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(msg)
			if err != nil {
				return nil, err
			}
			sampleVTs = append(sampleVTs, vt)
		case 2: // sample
			msg, err := top.bytes()
			if err != nil {
				return nil, err
			}
			s, err := parseSample(msg)
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		case 4: // location
			msg, err := top.bytes()
			if err != nil {
				return nil, err
			}
			id, fns, err := parseLocation(msg)
			if err != nil {
				return nil, err
			}
			locFuncs[id] = fns
		case 5: // function
			msg, err := top.bytes()
			if err != nil {
				return nil, err
			}
			id, name, err := parseFunction(msg)
			if err != nil {
				return nil, err
			}
			funcNames[id] = name
		case 6: // string_table
			msg, err := top.bytes()
			if err != nil {
				return nil, err
			}
			strings = append(strings, string(msg))
		default:
			if err := top.skip(wt); err != nil {
				return nil, err
			}
		}
	}

	str := func(i int64) string {
		if i < 0 || i >= int64(len(strings)) {
			return ""
		}
		return strings[i]
	}
	p := &Profile{}
	for _, vt := range sampleVTs {
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: str(vt[0]), Unit: str(vt[1])})
	}
	for _, rs := range samples {
		s := Sample{Values: make([]int64, len(rs.values))}
		for i, v := range rs.values {
			s.Values[i] = int64(v)
		}
		for _, id := range rs.locIDs {
			for _, fid := range locFuncs[id] {
				s.Funcs = append(s.Funcs, str(funcNames[fid]))
			}
		}
		for _, l := range rs.labels {
			if l.str == 0 {
				continue // numeric label; profiledump only slices by string labels
			}
			if s.Labels == nil {
				s.Labels = map[string]string{}
			}
			s.Labels[str(l.key)] = str(l.str)
		}
		p.Samples = append(p.Samples, s)
	}
	return p, nil
}

// parseValueType decodes one ValueType message into string indices.
func parseValueType(data []byte) ([2]int64, error) {
	var out [2]int64
	b := wire{data: data}
	for !b.done() {
		field, wt, err := b.tag()
		if err != nil {
			return out, err
		}
		if wt == 0 && (field == 1 || field == 2) {
			v, err := b.varint()
			if err != nil {
				return out, err
			}
			out[field-1] = int64(v)
			continue
		}
		if err := b.skip(wt); err != nil {
			return out, err
		}
	}
	return out, nil
}

// parseSample decodes one Sample message.
func parseSample(data []byte) (rawSample, error) {
	var s rawSample
	b := wire{data: data}
	for !b.done() {
		field, wt, err := b.tag()
		if err != nil {
			return s, err
		}
		switch field {
		case 1:
			if s.locIDs, err = b.uint64s(wt, s.locIDs); err != nil {
				return s, err
			}
		case 2:
			if s.values, err = b.uint64s(wt, s.values); err != nil {
				return s, err
			}
		case 3:
			msg, err := b.bytes()
			if err != nil {
				return s, err
			}
			l, err := parseLabel(msg)
			if err != nil {
				return s, err
			}
			s.labels = append(s.labels, l)
		default:
			if err := b.skip(wt); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

// parseLabel decodes one Label message into string indices.
func parseLabel(data []byte) (rawLabel, error) {
	var l rawLabel
	b := wire{data: data}
	for !b.done() {
		field, wt, err := b.tag()
		if err != nil {
			return l, err
		}
		if wt == 0 && (field == 1 || field == 2) {
			v, err := b.varint()
			if err != nil {
				return l, err
			}
			if field == 1 {
				l.key = int64(v)
			} else {
				l.str = int64(v)
			}
			continue
		}
		if err := b.skip(wt); err != nil {
			return l, err
		}
	}
	return l, nil
}

// parseLocation decodes one Location message into its id and function
// ids (innermost line first, as encoded).
func parseLocation(data []byte) (uint64, []uint64, error) {
	var id uint64
	var fns []uint64
	b := wire{data: data}
	for !b.done() {
		field, wt, err := b.tag()
		if err != nil {
			return 0, nil, err
		}
		switch {
		case field == 1 && wt == 0:
			if id, err = b.varint(); err != nil {
				return 0, nil, err
			}
		case field == 4 && wt == 2:
			msg, err := b.bytes()
			if err != nil {
				return 0, nil, err
			}
			fid, err := parseLine(msg)
			if err != nil {
				return 0, nil, err
			}
			if fid != 0 {
				fns = append(fns, fid)
			}
		default:
			if err := b.skip(wt); err != nil {
				return 0, nil, err
			}
		}
	}
	return id, fns, nil
}

// parseLine decodes one Line message into its function id.
func parseLine(data []byte) (uint64, error) {
	var fid uint64
	b := wire{data: data}
	for !b.done() {
		field, wt, err := b.tag()
		if err != nil {
			return 0, err
		}
		if field == 1 && wt == 0 {
			if fid, err = b.varint(); err != nil {
				return 0, err
			}
			continue
		}
		if err := b.skip(wt); err != nil {
			return 0, err
		}
	}
	return fid, nil
}

// parseFunction decodes one Function message into (id, name string index).
func parseFunction(data []byte) (uint64, int64, error) {
	var id uint64
	var name int64
	b := wire{data: data}
	for !b.done() {
		field, wt, err := b.tag()
		if err != nil {
			return 0, 0, err
		}
		if wt == 0 && (field == 1 || field == 2) {
			v, err := b.varint()
			if err != nil {
				return 0, 0, err
			}
			if field == 1 {
				id = v
			} else {
				name = int64(v)
			}
			continue
		}
		if err := b.skip(wt); err != nil {
			return 0, 0, err
		}
	}
	return id, name, nil
}
