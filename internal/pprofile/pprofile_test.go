package pprofile

import (
	"bytes"
	"context"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// TestParseHeapProfile parses a real heap profile written by runtime/pprof
// — the same producer the daemon's -profile-dir ring uses.
func TestParseHeapProfile(t *testing.T) {
	// Make sure at least one allocation site is sampled.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 64<<10))
	}
	_ = sink

	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	p, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"alloc_objects": false, "alloc_space": false, "inuse_objects": false, "inuse_space": false}
	for _, st := range p.SampleTypes {
		if _, ok := want[st.Type]; ok {
			want[st.Type] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("sample type %s missing; got %+v", name, p.SampleTypes)
		}
	}
	if got := p.ValueIndex("inuse_space"); got < 0 || p.SampleTypes[got].Unit != "bytes" {
		t.Fatalf("ValueIndex(inuse_space) = %d (%+v)", got, p.SampleTypes)
	}
	if p.ValueIndex("") != len(p.SampleTypes)-1 {
		t.Fatal("empty name must select the last column")
	}
	if p.ValueIndex("nope") != -1 {
		t.Fatal("unknown name must return -1")
	}
	if len(p.Samples) == 0 {
		t.Fatal("heap profile has no samples")
	}
	var stacked bool
	for _, s := range p.Samples {
		if len(s.Values) != len(p.SampleTypes) {
			t.Fatalf("sample has %d values for %d types", len(s.Values), len(p.SampleTypes))
		}
		if len(s.Funcs) > 0 && s.Funcs[0] != "" {
			stacked = true
		}
	}
	if !stacked {
		t.Fatal("no sample resolved to a named leaf function")
	}
}

// burnCPU keeps the CPU busy so a short profile collects samples.  The
// returned value defeats dead-code elimination.
func burnCPU(until time.Time) float64 {
	x := 1.0
	for time.Now().Before(until) {
		for i := 0; i < 1<<14; i++ {
			x = x*1.000000001 + 0.000001
		}
	}
	return x
}

// TestParseCPUProfileLabels captures a short CPU profile with pprof.Do
// labels — the shape acqserver workers and gateway upstreams produce —
// and asserts the labels survive parsing.  Skipped when the sampler
// catches no labeled samples (possible on a starved CI machine).
func TestParseCPUProfileLabels(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("cannot start CPU profile: %v", err)
	}
	pprof.Do(context.Background(), pprof.Labels("stage", "test_worker"), func(context.Context) {
		burnCPU(time.Now().Add(300 * time.Millisecond))
	})
	pprof.StopCPUProfile()

	p, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.ValueIndex("cpu"); got < 0 || p.SampleTypes[got].Unit != "nanoseconds" {
		t.Fatalf("ValueIndex(cpu) = %d (%+v)", got, p.SampleTypes)
	}
	if len(p.Samples) == 0 {
		t.Skip("CPU profiler caught no samples")
	}
	var labeled bool
	for _, s := range p.Samples {
		if s.Labels["stage"] == "test_worker" {
			labeled = true
			break
		}
	}
	if !labeled {
		t.Skip("no labeled samples caught (starved machine)")
	}
	// The labeled burn loop should attribute to this package's function.
	var found bool
	for _, s := range p.Samples {
		if s.Labels["stage"] != "test_worker" {
			continue
		}
		for _, fn := range s.Funcs {
			if strings.Contains(fn, "pprofile.burnCPU") {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("labeled samples never attribute to burnCPU")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(bytes.NewReader([]byte("not a gzip stream"))); err == nil {
		t.Fatal("Parse accepted non-gzip input")
	}
}
