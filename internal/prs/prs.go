// Package prs generates and characterizes the pseudorandom binary sequences
// used to drive a multiplexed ion gate in Hadamard-transform ion mobility
// spectrometry (HT-IMS).
//
// A maximal-length sequence (m-sequence) of order n is produced by a linear
// feedback shift register (LFSR) whose feedback taps correspond to a
// primitive polynomial over GF(2).  The resulting binary sequence of length
// N = 2^n − 1 opens the ion gate on 1-elements and closes it on 0-elements,
// so roughly half of the source ion beam is utilized instead of the ~1 % duty
// cycle of a conventional signal-averaging experiment.
//
// The package also constructs the left-circulant simplex (S-) matrix of a
// sequence, verifies the defining m-sequence properties (balance, run-length
// statistics, two-valued cyclic autocorrelation), and produces the
// oversampled and defect-modified sequence variants used by the
// PNNL-enhanced deconvolution scheme (Clowers et al., Anal. Chem. 2008).
package prs

import (
	"fmt"
	"math/bits"
)

// Bit is a single element of a binary gating sequence: 1 opens the ion gate,
// 0 keeps it closed.
type Bit = uint8

// Sequence is a binary gating sequence.  For an order-n m-sequence,
// len(Sequence) == 2^n − 1.
type Sequence []Bit

// primitiveTaps maps LFSR order n to the tap mask of a primitive polynomial
// x^n + ... + 1 over GF(2).  Bit i of the mask (LSB = bit 0) corresponds to
// the coefficient of x^(i+1); the constant term is implicit.  These are the
// standard minimum-weight primitive polynomials tabulated for m-sequence
// generation.
var primitiveTaps = map[int]uint32{
	2:  0x3,     // x^2 + x + 1
	3:  0x6,     // x^3 + x^2 + 1
	4:  0xC,     // x^4 + x^3 + 1
	5:  0x14,    // x^5 + x^3 + 1
	6:  0x30,    // x^6 + x^5 + 1
	7:  0x60,    // x^7 + x^6 + 1
	8:  0xB8,    // x^8 + x^6 + x^5 + x^4 + 1
	9:  0x110,   // x^9 + x^5 + 1
	10: 0x240,   // x^10 + x^7 + 1
	11: 0x500,   // x^11 + x^9 + 1
	12: 0xE08,   // x^12 + x^11 + x^10 + x^4 + 1
	13: 0x1C80,  // x^13 + x^12 + x^11 + x^8 + 1
	14: 0x3802,  // x^14 + x^13 + x^12 + x^2 + 1
	15: 0x6000,  // x^15 + x^14 + 1
	16: 0xD008,  // x^16 + x^15 + x^13 + x^4 + 1
	17: 0x12000, // x^17 + x^14 + 1
	18: 0x20400, // x^18 + x^11 + 1
	19: 0x72000, // x^19 + x^18 + x^17 + x^14 + 1
	20: 0x90000, // x^20 + x^17 + 1
}

// MinOrder and MaxOrder bound the sequence orders supported by NewLFSR and
// MSequence.
const (
	MinOrder = 2
	MaxOrder = 20
)

// Taps returns the primitive-polynomial tap mask used for the given order,
// in the encoding documented on primitiveTaps.  Decoders that exploit the
// algebraic structure of the m-sequence (e.g. the fast-Hadamard-transform
// simplex inverse) need the taps to reconstruct the LFSR state orbit.
func Taps(order int) (uint32, error) {
	taps, ok := primitiveTaps[order]
	if !ok {
		return 0, fmt.Errorf("prs: no primitive polynomial for order %d (supported %d..%d)", order, MinOrder, MaxOrder)
	}
	return taps, nil
}

// feedbackMask converts the polynomial tap encoding of primitiveTaps (bit i
// = coefficient of x^(i+1)) into the feedback mask of a right-shift
// Fibonacci LFSR whose register bit j holds sequence element s[t+j]: the
// recurrence s[t+n] = Σ c_i·s[t+i] needs mask bit i = c_i, with the
// constant term c_0 = 1 always present and the leading x^n term dropped.
func feedbackMask(order int, taps uint32) uint32 {
	mask := uint32(1)<<order - 1
	return ((taps << 1) | 1) & mask
}

// LFSR is a Fibonacci-configuration linear feedback shift register over
// GF(2).  The zero value is not usable; construct with NewLFSR.
type LFSR struct {
	order int
	fb    uint32 // feedback mask: bit i = recurrence coefficient c_i
	state uint32
}

// NewLFSR returns an LFSR of the given order (MinOrder..MaxOrder) seeded with
// the given nonzero state.  Only the low `order` bits of seed are used; if
// they are all zero the seed 1 is substituted, because the all-zero state is
// a fixed point that never leaves itself.
func NewLFSR(order int, seed uint32) (*LFSR, error) {
	taps, ok := primitiveTaps[order]
	if !ok {
		return nil, fmt.Errorf("prs: no primitive polynomial for order %d (supported %d..%d)", order, MinOrder, MaxOrder)
	}
	mask := uint32(1)<<order - 1
	s := seed & mask
	if s == 0 {
		s = 1
	}
	return &LFSR{order: order, fb: feedbackMask(order, taps), state: s}, nil
}

// Order returns the register length n; the generated m-sequence has period
// 2^n − 1.
func (l *LFSR) Order() int { return l.order }

// State returns the current register contents (low Order() bits).
func (l *LFSR) State() uint32 { return l.state }

// Next advances the register one step and returns the output bit (the bit
// shifted out of the low end).
func (l *LFSR) Next() Bit {
	out := Bit(l.state & 1)
	fb := bits.OnesCount32(l.state&l.fb) & 1
	l.state >>= 1
	l.state |= uint32(fb) << (l.order - 1)
	return out
}

// Period returns the sequence period 2^order − 1.
func (l *LFSR) Period() int { return 1<<l.order - 1 }

// MSequence returns one full period of the maximal-length sequence of the
// given order, starting from seed 1.
func MSequence(order int) (Sequence, error) {
	l, err := NewLFSR(order, 1)
	if err != nil {
		return nil, err
	}
	n := l.Period()
	seq := make(Sequence, n)
	for i := range seq {
		seq[i] = l.Next()
	}
	return seq, nil
}

// MustMSequence is MSequence but panics on an unsupported order.  It is
// intended for initialization of fixed experiment configurations.
func MustMSequence(order int) Sequence {
	s, err := MSequence(order)
	if err != nil {
		panic(err)
	}
	return s
}

// Ones returns the number of gate-open elements in the sequence.  For an
// order-n m-sequence this is 2^(n−1).
func (s Sequence) Ones() int {
	c := 0
	for _, b := range s {
		if b != 0 {
			c++
		}
	}
	return c
}

// DutyCycle returns the fraction of time the ion gate is open, Ones()/len.
func (s Sequence) DutyCycle() float64 {
	if len(s) == 0 {
		return 0
	}
	return float64(s.Ones()) / float64(len(s))
}

// Rotate returns the sequence cyclically rotated left by k positions
// (k may be any integer; negative rotates right).
func (s Sequence) Rotate(k int) Sequence {
	n := len(s)
	if n == 0 {
		return nil
	}
	k = ((k % n) + n) % n
	out := make(Sequence, n)
	copy(out, s[k:])
	copy(out[n-k:], s[:k])
	return out
}

// Autocorrelation returns the cyclic autocorrelation of the ±1-mapped
// sequence at lag k: sum over i of a(i)*a(i+k) with a = 2s−1.  For an
// m-sequence of length N this is N at lag 0 and −1 at every other lag — the
// property that makes the simplex-matrix inverse exact.
func (s Sequence) Autocorrelation(k int) int {
	n := len(s)
	if n == 0 {
		return 0
	}
	k = ((k % n) + n) % n
	acc := 0
	for i := 0; i < n; i++ {
		a := int(s[i])*2 - 1
		b := int(s[(i+k)%n])*2 - 1
		acc += a * b
	}
	return acc
}

// IsMaximalLength reports whether the sequence satisfies the two defining
// statistical properties of an m-sequence of its length: balance
// (ones = (N+1)/2) and two-valued cyclic autocorrelation (N at lag 0,
// −1 elsewhere).  Length must be 2^n − 1 for some n ≥ 2.
func (s Sequence) IsMaximalLength() bool {
	n := len(s)
	if n < 3 || (n+1)&n != 0 { // n+1 must be a power of two
		return false
	}
	if s.Ones() != (n+1)/2 {
		return false
	}
	for k := 1; k < n; k++ {
		if s.Autocorrelation(k) != -1 {
			return false
		}
	}
	return true
}

// RunLengths returns a histogram of run lengths in the cyclic sequence,
// separately for runs of ones and zeros.  Index r of each slice holds the
// number of runs of length r (index 0 unused).  An m-sequence of order n has
// 2^(n−1−r) runs of each kind of length r for r < n−1, one run of n−1 zeros
// and one run of n ones.
func (s Sequence) RunLengths() (ones, zeros []int) {
	n := len(s)
	if n == 0 {
		return nil, nil
	}
	// Find a transition to anchor the cyclic run decomposition.
	start := -1
	for i := 0; i < n; i++ {
		if s[i] != s[(i+n-1)%n] {
			start = i
			break
		}
	}
	maxRun := n + 1
	ones = make([]int, maxRun+1)
	zeros = make([]int, maxRun+1)
	if start == -1 { // constant sequence: one run of length n
		if s[0] != 0 {
			ones[n]++
		} else {
			zeros[n]++
		}
		return ones, zeros
	}
	i := start
	for counted := 0; counted < n; {
		v := s[i%n]
		run := 0
		for counted+run < n && s[(i+run)%n] == v {
			run++
		}
		if v != 0 {
			ones[run]++
		} else {
			zeros[run]++
		}
		i += run
		counted += run
	}
	return ones, zeros
}

// SimplexMatrix returns the N×N left-circulant simplex matrix of the
// sequence: row i is the sequence cyclically rotated left by i positions.
// In HT-IMS the observed (multiplexed) arrival-time vector y relates to the
// true ion-arrival distribution x by y = S·x (up to noise), and the simplex
// inverse recovers x.
func (s Sequence) SimplexMatrix() [][]float64 {
	n := len(s)
	m := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			row[j] = float64(s[(i+j)%n])
		}
		m[i] = row
	}
	return m
}

// Oversample returns the sequence with every element repeated k times.
// Oversampling an order-n PRS by k yields k·(2^n−1) gating bins per IMS
// cycle, increasing the number of gate pulses per unit time — the first
// ingredient of the PNNL modified-sequence scheme.
func (s Sequence) Oversample(k int) Sequence {
	if k <= 0 {
		return nil
	}
	out := make(Sequence, 0, len(s)*k)
	for _, b := range s {
		for j := 0; j < k; j++ {
			out = append(out, b)
		}
	}
	return out
}

// Modify applies the PNNL defect modification to an oversampled sequence:
// within every contiguous run of gate-open elements, the first `defect`
// elements are forced closed.  This models (and pre-compensates) the finite
// rise time and ion-depletion behaviour of a real Bradbury–Nielsen gate, and
// produces sequences whose circulant system remains well conditioned so that
// reconstruction succeeds without a sample-specific weighting matrix.
// defect must be smaller than the shortest run of ones or the run vanishes
// entirely (allowed, but reported by Validate).
func (s Sequence) Modify(defect int) Sequence {
	n := len(s)
	out := make(Sequence, n)
	copy(out, s)
	if defect <= 0 || n == 0 {
		return out
	}
	// Anchor at a 0→1 transition to handle the cyclic wrap.
	start := -1
	for i := 0; i < n; i++ {
		if s[i] == 1 && s[(i+n-1)%n] == 0 {
			start = i
			break
		}
	}
	if start == -1 {
		return out // constant sequence
	}
	i := start
	for counted := 0; counted < n; {
		if s[i%n] == 1 {
			run := 0
			for counted+run < n && s[(i+run)%n] == 1 {
				run++
			}
			for d := 0; d < defect && d < run; d++ {
				out[(i+d)%n] = 0
			}
			i += run
			counted += run
		} else {
			i++
			counted++
		}
	}
	return out
}

// Validate performs a structural check of the sequence for use as a gating
// waveform and returns a descriptive error if it is unusable: empty, all
// closed, or all open.
func (s Sequence) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("prs: empty sequence")
	}
	ones := s.Ones()
	if ones == 0 {
		return fmt.Errorf("prs: gate never opens")
	}
	if ones == len(s) {
		return fmt.Errorf("prs: gate never closes (no modulation)")
	}
	return nil
}

// Floats returns the sequence as a float64 vector (0.0/1.0), the form
// consumed by the deconvolution routines.
func (s Sequence) Floats() []float64 {
	out := make([]float64, len(s))
	for i, b := range s {
		out[i] = float64(b)
	}
	return out
}

// String renders the sequence as a compact 0/1 string.
func (s Sequence) String() string {
	buf := make([]byte, len(s))
	for i, b := range s {
		buf[i] = '0' + b
	}
	return string(buf)
}

// OrderForLength returns the m-sequence order n such that 2^n − 1 == length,
// or an error if length is not of that form.
func OrderForLength(length int) (int, error) {
	if length < 3 || (length+1)&length != 0 {
		return 0, fmt.Errorf("prs: length %d is not 2^n-1", length)
	}
	return bits.Len(uint(length)), nil
}
