package prs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewLFSRUnsupportedOrder(t *testing.T) {
	for _, order := range []int{-1, 0, 1, 21, 100} {
		if _, err := NewLFSR(order, 1); err == nil {
			t.Errorf("order %d: expected error, got nil", order)
		}
	}
}

func TestNewLFSRZeroSeedSubstituted(t *testing.T) {
	l, err := NewLFSR(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.State() == 0 {
		t.Fatal("zero seed must be replaced by a nonzero state")
	}
}

// TestLFSRPeriod verifies that every supported order yields the full period
// 2^n - 1, i.e. the tap table really holds primitive polynomials.
func TestLFSRPeriod(t *testing.T) {
	for order := MinOrder; order <= 16; order++ {
		l, err := NewLFSR(order, 1)
		if err != nil {
			t.Fatal(err)
		}
		start := l.State()
		period := 0
		seen := map[uint32]bool{}
		for {
			if seen[l.State()] {
				t.Fatalf("order %d: state repeated before returning to start", order)
			}
			seen[l.State()] = true
			l.Next()
			period++
			if l.State() == start {
				break
			}
			if period > l.Period() {
				t.Fatalf("order %d: period exceeds 2^n-1", order)
			}
		}
		if period != l.Period() {
			t.Errorf("order %d: period = %d, want %d", order, period, l.Period())
		}
	}
}

// TestLFSRPeriodLargeOrders spot-checks the big orders by running exactly one
// period and confirming return to the initial state (full state enumeration
// is too slow above order 16).
func TestLFSRPeriodLargeOrders(t *testing.T) {
	if testing.Short() {
		t.Skip("long period walk")
	}
	for _, order := range []int{17, 18, 19, 20} {
		l, _ := NewLFSR(order, 1)
		start := l.State()
		for i := 0; i < l.Period(); i++ {
			if i > 0 && l.State() == start {
				t.Fatalf("order %d: state returned to seed after %d < period steps", order, i)
			}
			l.Next()
		}
		if l.State() != start {
			t.Errorf("order %d: state did not return to seed after one period", order)
		}
	}
}

func TestMSequenceProperties(t *testing.T) {
	for order := 2; order <= 10; order++ {
		s, err := MSequence(order)
		if err != nil {
			t.Fatal(err)
		}
		n := 1<<order - 1
		if len(s) != n {
			t.Fatalf("order %d: len = %d, want %d", order, len(s), n)
		}
		if got, want := s.Ones(), (n+1)/2; got != want {
			t.Errorf("order %d: ones = %d, want %d (balance property)", order, got, want)
		}
		if !s.IsMaximalLength() {
			t.Errorf("order %d: IsMaximalLength = false", order)
		}
	}
}

func TestAutocorrelationTwoValued(t *testing.T) {
	s := MustMSequence(7)
	n := len(s)
	if got := s.Autocorrelation(0); got != n {
		t.Errorf("lag 0: %d, want %d", got, n)
	}
	for k := 1; k < n; k++ {
		if got := s.Autocorrelation(k); got != -1 {
			t.Errorf("lag %d: %d, want -1", k, got)
		}
	}
	// Negative and out-of-range lags wrap.
	if s.Autocorrelation(-1) != s.Autocorrelation(n-1) {
		t.Error("negative lag does not wrap")
	}
	if s.Autocorrelation(n+3) != s.Autocorrelation(3) {
		t.Error("lag beyond period does not wrap")
	}
}

func TestRunLengths(t *testing.T) {
	order := 6
	s := MustMSequence(order)
	ones, zeros := s.RunLengths()
	// m-sequence run structure: for 1 <= r <= n-2 there are 2^(n-2-r) runs of
	// each kind; one run of n-1 zeros; one run of n ones.
	for r := 1; r <= order-2; r++ {
		want := 1 << (order - 2 - r)
		if ones[r] != want {
			t.Errorf("runs of %d ones = %d, want %d", r, ones[r], want)
		}
		if zeros[r] != want {
			t.Errorf("runs of %d zeros = %d, want %d", r, zeros[r], want)
		}
	}
	if zeros[order-1] != 1 {
		t.Errorf("runs of %d zeros = %d, want 1", order-1, zeros[order-1])
	}
	if ones[order] != 1 {
		t.Errorf("runs of %d ones = %d, want 1", order, ones[order])
	}
}

func TestRunLengthsConstantSequence(t *testing.T) {
	allOnes := Sequence{1, 1, 1, 1}
	ones, zeros := allOnes.RunLengths()
	if ones[4] != 1 {
		t.Errorf("constant ones: ones[4] = %d, want 1", ones[4])
	}
	for r, c := range zeros {
		if c != 0 {
			t.Errorf("constant ones: zeros[%d] = %d, want 0", r, c)
		}
	}
}

func TestRotate(t *testing.T) {
	s := Sequence{1, 0, 0, 1, 1}
	cases := []struct {
		k    int
		want string
	}{
		{0, "10011"},
		{1, "00111"},
		{2, "01110"},
		{5, "10011"},
		{-1, "11001"},
		{7, "01110"},
	}
	for _, c := range cases {
		if got := s.Rotate(c.k).String(); got != c.want {
			t.Errorf("Rotate(%d) = %s, want %s", c.k, got, c.want)
		}
	}
	if Sequence(nil).Rotate(3) != nil {
		t.Error("rotating empty sequence should return nil")
	}
}

// TestRotateComposition: rotating by a then b equals rotating by a+b.
func TestRotateComposition(t *testing.T) {
	s := MustMSequence(5)
	f := func(a, b int8) bool {
		lhs := s.Rotate(int(a)).Rotate(int(b)).String()
		rhs := s.Rotate(int(a) + int(b)).String()
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimplexMatrixRowsAreRotations(t *testing.T) {
	s := MustMSequence(4)
	m := s.SimplexMatrix()
	n := len(s)
	if len(m) != n {
		t.Fatalf("matrix has %d rows, want %d", len(m), n)
	}
	for i := 0; i < n; i++ {
		rot := s.Rotate(i)
		for j := 0; j < n; j++ {
			if m[i][j] != float64(rot[j]) {
				t.Fatalf("row %d is not rotation by %d", i, i)
			}
		}
	}
}

// TestSimplexMatrixInverseIdentity verifies the closed-form S-matrix inverse
// S^-1 = 2/(n+1) (2 S^T - J) against a direct multiplication.
func TestSimplexMatrixInverseIdentity(t *testing.T) {
	s := MustMSequence(5)
	n := len(s)
	m := s.SimplexMatrix()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// (S * Sinv)[i][j]
			acc := 0.0
			for k := 0; k < n; k++ {
				inv := 2.0 / float64(n+1) * (2*m[j][k] - 1)
				acc += m[i][k] * inv
			}
			want := 0.0
			if i == j {
				want = 1.0
			}
			if diff := acc - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("S*Sinv[%d][%d] = %g, want %g", i, j, acc, want)
			}
		}
	}
}

func TestOversample(t *testing.T) {
	s := Sequence{1, 0, 1}
	got := s.Oversample(3).String()
	if got != "111000111" {
		t.Errorf("Oversample(3) = %s, want 111000111", got)
	}
	if s.Oversample(0) != nil {
		t.Error("Oversample(0) should return nil")
	}
	if s.Oversample(-2) != nil {
		t.Error("Oversample(negative) should return nil")
	}
	if got := s.Oversample(1).String(); got != "101" {
		t.Errorf("Oversample(1) = %s, want 101", got)
	}
}

func TestOversampleDutyCyclePreserved(t *testing.T) {
	s := MustMSequence(6)
	for k := 1; k <= 4; k++ {
		if got, want := s.Oversample(k).DutyCycle(), s.DutyCycle(); got != want {
			t.Errorf("k=%d: duty cycle %g, want %g", k, got, want)
		}
	}
}

func TestModifyRemovesRunHeads(t *testing.T) {
	// 110111001 cyclic: runs of ones are (starting idx 3, len 3) and the
	// wrap-around run idx 8..1 of length 3.
	s := Sequence{1, 1, 0, 1, 1, 1, 0, 0, 1}
	got := s.Modify(1).String()
	// Run starting at index 8 (cyclic) loses element 8; run at 3 loses 3.
	want := "110011000"
	if got != want {
		t.Errorf("Modify(1) = %s, want %s", got, want)
	}
}

func TestModifyZeroDefectIsIdentity(t *testing.T) {
	s := MustMSequence(7).Oversample(2)
	if got := s.Modify(0).String(); got != s.String() {
		t.Error("Modify(0) changed the sequence")
	}
}

func TestModifyDefectLargerThanRunClearsRun(t *testing.T) {
	s := Sequence{0, 1, 0, 1, 1, 0}
	got := s.Modify(5).String()
	if got != "000000" {
		t.Errorf("Modify(5) = %s, want 000000", got)
	}
}

func TestModifyConstantSequenceUnchanged(t *testing.T) {
	s := Sequence{1, 1, 1}
	if got := s.Modify(1).String(); got != "111" {
		t.Errorf("Modify on constant ones = %s, want unchanged (no transition anchor)", got)
	}
}

// TestModifyOversampledReducesOnesPerRun: with oversampling k and defect d,
// each original run of ones of length r becomes k*r - d open bins.
func TestModifyOversampledReducesOnesPerRun(t *testing.T) {
	s := MustMSequence(5)
	k, d := 3, 1
	ov := s.Oversample(k)
	mod := ov.Modify(d)
	onesRuns, _ := s.RunLengths()
	runCount := 0
	for _, c := range onesRuns {
		runCount += c
	}
	wantOnes := ov.Ones() - runCount*d
	if got := mod.Ones(); got != wantOnes {
		t.Errorf("modified ones = %d, want %d", got, wantOnes)
	}
}

func TestValidate(t *testing.T) {
	if err := (Sequence{}).Validate(); err == nil {
		t.Error("empty sequence should be invalid")
	}
	if err := (Sequence{0, 0, 0}).Validate(); err == nil {
		t.Error("all-closed sequence should be invalid")
	}
	if err := (Sequence{1, 1, 1}).Validate(); err == nil {
		t.Error("all-open sequence should be invalid")
	}
	if err := MustMSequence(4).Validate(); err != nil {
		t.Errorf("m-sequence should be valid: %v", err)
	}
}

func TestFloats(t *testing.T) {
	s := Sequence{1, 0, 1, 1}
	f := s.Floats()
	want := []float64{1, 0, 1, 1}
	for i := range want {
		if f[i] != want[i] {
			t.Fatalf("Floats()[%d] = %g, want %g", i, f[i], want[i])
		}
	}
}

func TestOrderForLength(t *testing.T) {
	for order := 2; order <= 12; order++ {
		n := 1<<order - 1
		got, err := OrderForLength(n)
		if err != nil {
			t.Fatalf("length %d: %v", n, err)
		}
		if got != order {
			t.Errorf("OrderForLength(%d) = %d, want %d", n, got, order)
		}
	}
	for _, bad := range []int{0, 1, 2, 4, 6, 100} {
		if _, err := OrderForLength(bad); err == nil {
			t.Errorf("OrderForLength(%d): expected error", bad)
		}
	}
}

func TestMustMSequencePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMSequence(1) should panic")
		}
	}()
	MustMSequence(1)
}

// Property: different seeds generate rotations of the same m-sequence.
func TestSeedYieldsRotation(t *testing.T) {
	order := 6
	base := MustMSequence(order)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		seed := uint32(rng.Intn(1<<order-1) + 1)
		l, _ := NewLFSR(order, seed)
		s := make(Sequence, l.Period())
		for i := range s {
			s[i] = l.Next()
		}
		found := false
		for k := 0; k < len(base); k++ {
			if base.Rotate(k).String() == s.String() {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("seed %d: sequence is not a rotation of the base m-sequence", seed)
		}
	}
}

// Property: m-sequences of random valid orders always pass Validate and have
// duty cycle slightly above 1/2.
func TestDutyCycleAboveHalf(t *testing.T) {
	for order := 2; order <= 12; order++ {
		s := MustMSequence(order)
		dc := s.DutyCycle()
		if dc <= 0.5 || dc > 0.67 {
			t.Errorf("order %d: duty cycle %g out of expected (0.5, 0.67]", order, dc)
		}
	}
}

func BenchmarkMSequence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := MSequence(12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAutocorrelation(b *testing.B) {
	s := MustMSequence(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Autocorrelation(i % len(s))
	}
}
