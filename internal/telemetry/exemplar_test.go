package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestHistogramExemplars(t *testing.T) {
	h := (&Histogram{}).EnableExemplars()
	h.ObserveExemplar(100, 0xabc)
	h.ObserveExemplar(1e6, 0xdef)
	h.ObserveExemplar(1e6, 0) // zero trace id observes but never captures

	ex := h.Exemplars()
	lo, hi := ex[bucketIndex(100)], ex[bucketIndex(1e6)]
	if lo.TraceID != 0xabc || lo.Value != 100 {
		t.Fatalf("low bucket exemplar = %+v, want trace 0xabc value 100", lo)
	}
	if hi.TraceID != 0xdef || hi.Value != 1e6 {
		t.Fatalf("high bucket exemplar = %+v, want trace 0xdef (zero id must not overwrite)", hi)
	}
	if lo.UnixNano == 0 || time.Since(time.Unix(0, lo.UnixNano)) > time.Minute {
		t.Fatalf("exemplar timestamp %d not recent", lo.UnixNano)
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3 (every ObserveExemplar counts)", h.Count())
	}
}

func TestHistogramExemplarLatestWins(t *testing.T) {
	h := (&Histogram{}).EnableExemplars()
	h.ObserveExemplar(100, 1)
	h.ObserveExemplar(101, 2) // same bucket, newer capture
	if got := h.Exemplars()[bucketIndex(100)]; got.TraceID != 2 || got.Value != 101 {
		t.Fatalf("exemplar = %+v, want the most recent capture (trace 2, value 101)", got)
	}
}

func TestHistogramExemplarsDisabled(t *testing.T) {
	var h Histogram
	h.ObserveExemplar(100, 0xabc)
	if got := h.Exemplars()[bucketIndex(100)]; got.TraceID != 0 {
		t.Fatalf("exemplar retained without EnableExemplars: %+v", got)
	}
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1 (observation must still land)", h.Count())
	}
	var nilH *Histogram
	nilH.ObserveExemplar(1, 1) // must not panic
	nilH.EnableExemplars().ObserveExemplar(1, 1)
	_ = nilH.Exemplars()
}

func TestExemplarExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("app_lat_ns", "latency").EnableExemplars()
	h.ObserveExemplar(100, 0xabc)

	snap := r.Snapshot()
	var found *Bucket
	for _, m := range snap.Metrics {
		for i := range m.Buckets {
			if m.Buckets[i].ExemplarTraceID != "" {
				found = &m.Buckets[i]
			}
		}
	}
	if found == nil {
		t.Fatal("no bucket carries an exemplar in the snapshot")
	}
	if found.ExemplarTraceID != "0000000000000abc" {
		t.Fatalf("ExemplarTraceID = %q, want 16-hex-digit 0000000000000abc", found.ExemplarTraceID)
	}
	if found.ExemplarValue != 100 || found.ExemplarUnixNano == 0 {
		t.Fatalf("exemplar bucket = %+v, want value 100 and a timestamp", found)
	}

	var prom strings.Builder
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `# {trace_id="0000000000000abc"} 100`) {
		t.Fatalf("text exposition lacks the OpenMetrics exemplar suffix:\n%s", prom.String())
	}

	// The JSON exposition must round-trip the exemplar fields (the fleet
	// rollup and imstop decode snapshots from this document).
	var buf strings.Builder
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatal(err)
	}
	var roundTripped bool
	for _, m := range back.Metrics {
		for _, b := range m.Buckets {
			if b.ExemplarTraceID == "0000000000000abc" && b.ExemplarValue == 100 {
				roundTripped = true
			}
		}
	}
	if !roundTripped {
		t.Fatalf("exemplar lost in JSON round-trip:\n%s", buf.String())
	}
}

// TestObserveExemplarAllocs is part of the allocgate suite (`make
// allocgate`): exemplar capture must add zero allocations to the hot
// path, enabled or not.
func TestObserveExemplarAllocs(t *testing.T) {
	r := NewRegistry()
	enabled := r.Histogram("x_ns", "").EnableExemplars()
	if a := testing.AllocsPerRun(1000, func() { enabled.ObserveExemplar(12345, 0xabc) }); a != 0 {
		t.Fatalf("ObserveExemplar (enabled) allocates %.1f/op, want 0", a)
	}
	plain := r.Histogram("y_ns", "")
	if a := testing.AllocsPerRun(1000, func() { plain.ObserveExemplar(12345, 0xabc) }); a != 0 {
		t.Fatalf("ObserveExemplar (disabled) allocates %.1f/op, want 0", a)
	}
	var nilH *Histogram
	if a := testing.AllocsPerRun(1000, func() { nilH.ObserveExemplar(12345, 0xabc) }); a != 0 {
		t.Fatalf("ObserveExemplar (nil) allocates %.1f/op, want 0", a)
	}
}
