// export.go: snapshot-consistent reads of a Registry and their two
// serializations — Prometheus-style text exposition and JSON.  Output
// ordering is deterministic (families sorted by name, instances by label
// signature) so both formats are golden-testable.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Bucket is one histogram bucket in a snapshot: the count of observations
// at or below UpperBound, non-cumulative (each observation appears in
// exactly one bucket).
type Bucket struct {
	// UpperBound is the inclusive upper edge of the bucket; the final
	// bucket's bound serializes as "+Inf".
	UpperBound float64 `json:"le"`
	// Count is the number of observations that landed in this bucket.
	Count int64 `json:"count"`
	// ExemplarTraceID is the most recent trace id retained for this
	// bucket, as 16 lowercase hex digits (empty when the histogram does
	// not retain exemplars or none landed here yet).
	ExemplarTraceID string `json:"exemplar_trace_id,omitempty"`
	// ExemplarValue is the retained exemplar's observed value.
	ExemplarValue float64 `json:"exemplar_value,omitempty"`
	// ExemplarUnixNano is when the retained exemplar was observed.
	ExemplarUnixNano int64 `json:"exemplar_unix_nano,omitempty"`
}

// MarshalJSON renders the +Inf bound as the string "+Inf" (JSON has no
// infinity literal).
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if b.UpperBound < inf() {
		le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
	}
	return json.Marshal(struct {
		LE               string  `json:"le"`
		Count            int64   `json:"count"`
		ExemplarTraceID  string  `json:"exemplar_trace_id,omitempty"`
		ExemplarValue    float64 `json:"exemplar_value,omitempty"`
		ExemplarUnixNano int64   `json:"exemplar_unix_nano,omitempty"`
	}{le, b.Count, b.ExemplarTraceID, b.ExemplarValue, b.ExemplarUnixNano})
}

// UnmarshalJSON is the inverse of MarshalJSON, so consumers of
// /metrics.json (cmd/imstop, scripts) can decode a Snapshot with the
// stdlib json package; the "+Inf" bound round-trips to math.Inf(1).
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE               string  `json:"le"`
		Count            int64   `json:"count"`
		ExemplarTraceID  string  `json:"exemplar_trace_id,omitempty"`
		ExemplarValue    float64 `json:"exemplar_value,omitempty"`
		ExemplarUnixNano int64   `json:"exemplar_unix_nano,omitempty"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.LE == "+Inf" {
		b.UpperBound = inf()
	} else {
		v, err := strconv.ParseFloat(raw.LE, 64)
		if err != nil {
			return fmt.Errorf("telemetry: bucket bound %q: %w", raw.LE, err)
		}
		b.UpperBound = v
	}
	b.Count = raw.Count
	b.ExemplarTraceID = raw.ExemplarTraceID
	b.ExemplarValue = raw.ExemplarValue
	b.ExemplarUnixNano = raw.ExemplarUnixNano
	return nil
}

func inf() float64 { return BucketUpperBound(NumBuckets - 1) }

// Metric is one metric instance in a snapshot.
type Metric struct {
	// Name is the family name.
	Name string `json:"name"`
	// Kind is "counter", "gauge" or "histogram".
	Kind string `json:"kind"`
	// Help is the family description.
	Help string `json:"help,omitempty"`
	// Labels are the instance's dimensions.
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter or gauge reading (absent for histograms).
	Value *float64 `json:"value,omitempty"`
	// Count and Sum summarize a histogram (absent otherwise).
	Count int64   `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	// P50, P95 and P99 are quantile estimates derived from the log-scale
	// buckets (geometric bucket midpoints, within 2x by construction);
	// present only for non-empty histograms.
	P50 float64 `json:"p50,omitempty"`
	P95 float64 `json:"p95,omitempty"`
	P99 float64 `json:"p99,omitempty"`
	// WindowS is the duration actually covered by the rolling-window
	// fields below, in seconds — at most ExportWindow, shorter while
	// history is still accumulating, absent before the first rotation.
	WindowS float64 `json:"window_s,omitempty"`
	// WCount is the observation count inside the rolling window.
	WCount int64 `json:"wcount,omitempty"`
	// WP50, WP95 and WP99 are the rolling-window quantile estimates
	// (same estimator as P50/P95/P99); present only when the window holds
	// observations.
	WP50 float64 `json:"wp50,omitempty"`
	WP95 float64 `json:"wp95,omitempty"`
	WP99 float64 `json:"wp99,omitempty"`
	// Buckets are the non-empty histogram buckets.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	// Metrics lists every instance, sorted by family name then label
	// signature.
	Metrics []Metric `json:"metrics"`
}

// Snapshot copies the registry's current state as of time.Now; see
// SnapshotAt.
func (r *Registry) Snapshot() Snapshot {
	return r.SnapshotAt(time.Now())
}

// SnapshotAt copies the registry's current state, resolving rolling
// windows against the given instant (tests pass a fixed clock; everything
// else goes through Snapshot).  It first runs the registered OnSnapshot
// collectors, then reads every family.  It is safe under concurrent
// updates; histograms are internally consistent (count equals the sum of
// bucket counts by construction) and their rolling-window fields cover the
// trailing ExportWindow to WindowSlotDuration granularity.  A nil registry
// yields an empty snapshot.
func (r *Registry) SnapshotAt(now time.Time) Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.collect()
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.instances))
		for k := range f.instances {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			in := f.instances[k]
			m := Metric{Name: f.name, Kind: f.kind.String(), Help: f.help}
			if len(in.labels) > 0 {
				m.Labels = map[string]string{}
				for _, l := range in.labels {
					m.Labels[l.Key] = l.Value
				}
			}
			switch f.kind {
			case KindCounter:
				v := float64(in.c.Value())
				m.Value = &v
			case KindGauge:
				v := in.g.Value()
				m.Value = &v
			case KindHistogram:
				counts := in.h.Counts()
				exemplars := in.h.Exemplars()
				for i, c := range counts {
					m.Count += c
					if c != 0 {
						b := Bucket{UpperBound: BucketUpperBound(i), Count: c}
						if e := exemplars[i]; e.TraceID != 0 {
							b.ExemplarTraceID = hex16(e.TraceID)
							b.ExemplarValue = e.Value
							b.ExemplarUnixNano = e.UnixNano
						}
						m.Buckets = append(m.Buckets, b)
					}
				}
				m.Sum = in.h.Sum()
				if m.Count > 0 {
					m.P50 = QuantileOfCounts(counts, 0.50)
					m.P95 = QuantileOfCounts(counts, 0.95)
					m.P99 = QuantileOfCounts(counts, 0.99)
				}
				wcounts, covered := in.h.WindowCounts(now, ExportWindow)
				if covered > 0 {
					m.WindowS = covered.Seconds()
					for _, c := range wcounts {
						m.WCount += c
					}
					if m.WCount > 0 {
						m.WP50 = QuantileOfCounts(wcounts, 0.50)
						m.WP95 = QuantileOfCounts(wcounts, 0.95)
						m.WP99 = QuantileOfCounts(wcounts, 0.99)
					}
				}
			}
			s.Metrics = append(s.Metrics, m)
		}
	}
	return s
}

// FilterPrefix returns the snapshot restricted to metrics whose family
// name starts with any of the given prefixes (order preserved).  Empty
// prefixes are ignored; no usable prefix returns the snapshot unchanged.
func (s Snapshot) FilterPrefix(prefixes ...string) Snapshot {
	var keep []string
	for _, p := range prefixes {
		if p = strings.TrimSpace(p); p != "" {
			keep = append(keep, p)
		}
	}
	if len(keep) == 0 {
		return s
	}
	out := Snapshot{Metrics: make([]Metric, 0, len(s.Metrics))}
	for _, m := range s.Metrics {
		for _, p := range keep {
			if strings.HasPrefix(m.Name, p) {
				out.Metrics = append(out.Metrics, m)
				break
			}
		}
	}
	return out
}

// WriteJSON serializes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteJSON snapshots the registry and serializes it as indented JSON.
// A nil registry writes an empty metrics list.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}

// escapeLabel escapes a label value for the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatLabels renders {k="v",...} (empty string for no labels), with an
// optional extra label appended (used for histogram "le").
func formatLabels(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys)+1)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, escapeLabel(labels[k])))
	}
	if extraKey != "" {
		parts = append(parts, fmt.Sprintf("%s=%q", extraKey, extraVal))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatValue renders a sample value in the shortest round-trippable form.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// hex16 renders a trace id as 16 lowercase hex digits, the same spelling
// the trace package and /debug/traces use, so exemplars join textually.
func hex16(id uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// exemplarSuffix renders a bucket's retained exemplar in the OpenMetrics
// exemplar syntax — " # {trace_id=\"...\"} value timestamp" — or "" when
// the bucket holds none.
func exemplarSuffix(b Bucket) string {
	if b.ExemplarTraceID == "" {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s %s",
		b.ExemplarTraceID,
		formatValue(b.ExemplarValue),
		strconv.FormatFloat(float64(b.ExemplarUnixNano)/1e9, 'f', 3, 64))
}

// WritePrometheus serializes the snapshot in the Prometheus text
// exposition format (# HELP / # TYPE lines, cumulative histogram buckets
// with an explicit +Inf bound, _sum and _count series).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, m := range s.Metrics {
		if m.Name != lastFamily {
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
				return err
			}
			lastFamily = m.Name
		}
		switch m.Kind {
		case "histogram":
			var cum int64
			for _, b := range m.Buckets {
				cum += b.Count
				le := "+Inf"
				if b.UpperBound < inf() {
					le = formatValue(b.UpperBound)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", m.Name, formatLabels(m.Labels, "le", le), cum, exemplarSuffix(b)); err != nil {
					return err
				}
			}
			// Always close the series with the +Inf bound.
			if len(m.Buckets) == 0 || m.Buckets[len(m.Buckets)-1].UpperBound < inf() {
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, formatLabels(m.Labels, "le", "+Inf"), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, formatLabels(m.Labels, "", ""), formatValue(m.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, formatLabels(m.Labels, "", ""), m.Count); err != nil {
				return err
			}
			if m.Count > 0 {
				for _, q := range []struct {
					suffix string
					value  float64
				}{{"p50", m.P50}, {"p95", m.P95}, {"p99", m.P99}} {
					if _, err := fmt.Fprintf(w, "%s_%s%s %s\n", m.Name, q.suffix, formatLabels(m.Labels, "", ""), formatValue(q.value)); err != nil {
						return err
					}
				}
			}
			if m.WindowS > 0 {
				window := [][2]string{
					{"window_seconds", formatValue(m.WindowS)},
					{"window_count", strconv.FormatInt(m.WCount, 10)},
				}
				if m.WCount > 0 {
					window = append(window,
						[2]string{"window_p50", formatValue(m.WP50)},
						[2]string{"window_p95", formatValue(m.WP95)},
						[2]string{"window_p99", formatValue(m.WP99)})
				}
				for _, q := range window {
					if _, err := fmt.Fprintf(w, "%s_%s%s %s\n", m.Name, q[0], formatLabels(m.Labels, "", ""), q[1]); err != nil {
						return err
					}
				}
			}
		default:
			var v float64
			if m.Value != nil {
				v = *m.Value
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, formatLabels(m.Labels, "", ""), formatValue(v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WritePrometheus snapshots the registry and serializes it in the text
// exposition format.  A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}
