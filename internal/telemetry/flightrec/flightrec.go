// Package flightrec is the wide-event flight recorder: a lock-free ring
// holding one structured event per completed request — trace identity,
// session, queue shard, stage durations, routing attribution, frame-log
// sequence, outcome — emitted by acqserver and the gateway at
// response-write time.  Where a metric says "the p99 went red" and a trace
// says "this request spent 80 ms in the queue", the flight recorder is the
// joining layer: the last N requests, each as one row with every dimension
// attached, queryable live over /debug/events and dumped to disk as a
// black-box file when an incident trips (SLO transition to
// DEGRADED/UNHEALTHY, panic isolation).
//
// The ring is a fixed slice of atomic pointers indexed by a monotonically
// increasing sequence: writers claim a slot with one atomic add and
// publish an immutable *Event with one atomic store, so recording never
// blocks a worker and readers never observe a torn event (they may see a
// slot mid-overwrite as either generation, both complete).  Overwritten
// events are simply lost — the recorder is a black box, not a log; the
// frame log (internal/framelog) is the durable record.
//
// Families registered here (see docs/OBSERVABILITY.md): flightrec_events_total,
// flightrec_dumps_total, flightrec_dump_errors_total.
package flightrec

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Event is one wide event: everything known about one completed request,
// flattened into a single row.  Zero-valued fields are omitted from JSON,
// so acqserver events carry shard/queue/WAL dimensions and gateway events
// carry backend/attempt dimensions without either polluting the other.
type Event struct {
	// Seq is the recorder-assigned sequence number (1-based, monotonic);
	// filled by Record.
	Seq uint64 `json:"seq"`
	// UnixNano is when the event was recorded; filled by Record when zero.
	UnixNano int64 `json:"unix_nano"`
	// Source names the emitting tier: "acqserver" or "gateway".
	Source string `json:"source"`
	// TraceID is the request's trace identity as 16 lowercase hex digits
	// (the spelling /debug/traces uses), empty when tracing was off.
	TraceID string `json:"trace_id,omitempty"`
	// Session is the emitting tier's session id.
	Session uint64 `json:"session"`
	// ReqID is the client-assigned request id within the session.
	ReqID uint64 `json:"req_id"`
	// Order is the PRS (m-sequence) order served, acqserver events only.
	Order int `json:"prs_order,omitempty"`
	// Shard is the queue shard that served the frame (acqserver only).
	Shard int `json:"shard,omitempty"`
	// Path is the compute path ("hybrid", "cpu"), acqserver events only.
	Path string `json:"path,omitempty"`
	// QueueWaitNs is the time the frame sat in its shard queue.
	QueueWaitNs int64 `json:"queue_wait_ns,omitempty"`
	// ProcessNs is the deconvolution (decode) wall time.
	ProcessNs int64 `json:"process_ns,omitempty"`
	// WriteNs is the response write time.
	WriteNs int64 `json:"write_ns,omitempty"`
	// TotalNs is enqueue-to-response-written wall time; computed by Record
	// from Start when zero.
	TotalNs int64 `json:"total_ns,omitempty"`
	// Backend is the 1-based fleet member id that served the request
	// (gateway events; matches the RESULT routing trailer).
	Backend uint16 `json:"backend,omitempty"`
	// BackendAddr is the serving backend's address (gateway events).
	BackendAddr string `json:"backend_addr,omitempty"`
	// Attempts counts upstream attempts including sibling retries.
	Attempts uint8 `json:"attempts,omitempty"`
	// WALSeq is the frame-log sequence the frame was appended under
	// (0 = not logged).
	WALSeq uint64 `json:"wal_seq,omitempty"`
	// Outcome is the response status code string ("OK", "INTERNAL", ...).
	Outcome string `json:"outcome"`
	// ShedReason names the load-shedding reason when the request was shed
	// ("queue_full", "degraded", "draining", "no_backend").
	ShedReason string `json:"shed_reason,omitempty"`
	// Detail carries the error message of a non-OK outcome, truncated.
	Detail string `json:"detail,omitempty"`
	// CoalesceBatch is how many frames shared this frame's coalesced
	// decode batch (0 or 1 = served alone; acqserver events only).
	CoalesceBatch int `json:"coalesce_batch,omitempty"`
	// CoalesceWaitNs is the time the frame waited in the coalescer for
	// batch-mates before the batch dispatched.
	CoalesceWaitNs int64 `json:"coalesce_wait_ns,omitempty"`

	// Start, when non-zero, is the request's accept time; Record derives
	// TotalNs from it.  Never serialized.
	Start time.Time `json:"-"`
}

// maxDetailLen bounds Event.Detail so one pathological error message
// cannot bloat the ring or a dump.
const maxDetailLen = 256

// TraceIDHex renders a trace id as 16 lowercase hex digits — the same
// spelling /debug/traces and the histogram exemplars use, so one grep
// joins all three — or "" for zero (tracing off).
func TraceIDHex(id uint64) string {
	if id == 0 {
		return ""
	}
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// Config tunes a Recorder; zero fields take the defaults noted.
type Config struct {
	// Size is the ring capacity in events (default 4096).
	Size int
	// Metrics, when non-nil, receives the flightrec_* families.
	Metrics *telemetry.Registry
	// DumpDir, when set, is where Dump writes black-box files; empty
	// disables dumping (Dump becomes a counted no-op).
	DumpDir string
	// DumpRetain bounds the dump files kept on disk; the oldest beyond it
	// are deleted after each dump (default 16, ≤0 keeps all).
	DumpRetain int
	// MinDumpInterval rate-limits dumping: a Dump within it of the
	// previous one is skipped (default 10s).  Incidents arrive in bursts —
	// one black box per burst is the point, a dump per panic is an outage
	// amplifier.
	MinDumpInterval time.Duration
	// Logger, when non-nil, receives dump lifecycle events.
	Logger *slog.Logger
}

// Recorder is the lock-free wide-event ring.  Methods on a nil *Recorder
// are no-ops, so call sites wire it unconditionally like every other
// telemetry handle.
type Recorder struct {
	slots []atomic.Pointer[Event]
	head  atomic.Uint64 // last claimed sequence (0 = nothing recorded)

	dumpDir     string
	dumpRetain  int
	minInterval time.Duration
	lastDump    atomic.Int64 // unix nanos of the last accepted Dump
	dumpMu      sync.Mutex   // serializes dump file writes + retention
	log         *slog.Logger

	events     *telemetry.Counter
	dumps      *telemetry.Counter
	dumpErrors *telemetry.Counter
}

// New builds a recorder from cfg (zero fields defaulted; see Config).
func New(cfg Config) *Recorder {
	if cfg.Size <= 0 {
		cfg.Size = 4096
	}
	if cfg.DumpRetain == 0 {
		cfg.DumpRetain = 16
	}
	if cfg.MinDumpInterval == 0 {
		cfg.MinDumpInterval = 10 * time.Second
	}
	r := &Recorder{
		slots:       make([]atomic.Pointer[Event], cfg.Size),
		dumpDir:     cfg.DumpDir,
		dumpRetain:  cfg.DumpRetain,
		minInterval: cfg.MinDumpInterval,
		log:         cfg.Logger,
		events:      cfg.Metrics.Counter("flightrec_events_total", "wide events recorded into the flight-recorder ring"),
		dumps:       cfg.Metrics.Counter("flightrec_dumps_total", "black-box dump files written on incident trips"),
		dumpErrors:  cfg.Metrics.Counter("flightrec_dump_errors_total", "flight-recorder dumps that failed or were rate-limited"),
	}
	return r
}

// Record publishes one event into the ring: assigns its sequence, stamps
// its time and total duration when unset, truncates the detail, and stores
// it.  One atomic add plus one atomic store; safe from any goroutine.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	now := time.Now()
	e.Seq = r.head.Add(1)
	if e.UnixNano == 0 {
		e.UnixNano = now.UnixNano()
	}
	if e.TotalNs == 0 && !e.Start.IsZero() {
		e.TotalNs = now.Sub(e.Start).Nanoseconds()
	}
	e.Start = time.Time{}
	if len(e.Detail) > maxDetailLen {
		e.Detail = e.Detail[:maxDetailLen]
	}
	r.slots[int(e.Seq%uint64(len(r.slots)))].Store(&e)
	r.events.Inc()
}

// LastSeq returns the most recently assigned sequence (0 before the first
// Record, 0 on a nil receiver).
func (r *Recorder) LastSeq() uint64 {
	if r == nil {
		return 0
	}
	return r.head.Load()
}

// Filter selects events out of a Snapshot; the zero Filter selects all.
type Filter struct {
	// SinceSeq drops events at or below this sequence.
	SinceSeq uint64
	// Since drops events recorded before this instant (zero = no bound).
	Since time.Time
	// Outcome, when non-empty, keeps only events with this outcome code
	// (case-insensitive).
	Outcome string
	// MinTotal keeps only events whose TotalNs meets this duration.
	MinTotal time.Duration
	// Source, when non-empty, keeps only events from this tier.
	Source string
	// Limit keeps only the newest N matching events (≤0 = all).
	Limit int
}

// Snapshot copies the ring's current matching events, oldest first.  It
// reads each slot once; events overwritten mid-iteration appear as either
// generation, never torn.  Nil receivers return nil.
func (r *Recorder) Snapshot(f Filter) []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		ep := r.slots[i].Load()
		if ep == nil {
			continue
		}
		e := *ep
		if e.Seq <= f.SinceSeq {
			continue
		}
		if !f.Since.IsZero() && e.UnixNano < f.Since.UnixNano() {
			continue
		}
		if f.Outcome != "" && !strings.EqualFold(e.Outcome, f.Outcome) {
			continue
		}
		if f.MinTotal > 0 && e.TotalNs < f.MinTotal.Nanoseconds() {
			continue
		}
		if f.Source != "" && e.Source != f.Source {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// dumpFile is the on-disk shape of one black-box dump.
type dumpFile struct {
	// Reason names the incident that tripped the dump.
	Reason string `json:"reason"`
	// UnixNano is when the dump was written.
	UnixNano int64 `json:"unix_nano"`
	// LastSeq is the newest sequence assigned at dump time.
	LastSeq uint64 `json:"last_seq"`
	// Events is the full ring content, oldest first.
	Events []Event `json:"events"`
}

// Dump writes the ring's full content as a black-box JSON file named
// flightrec-<reason>-<unixnano>.json under the configured dump directory,
// then prunes dumps beyond the retention bound.  Dumps within
// MinDumpInterval of the previous accepted one are skipped (counted under
// flightrec_dump_errors_total), as are dumps with no directory configured.
// It returns the written path ("" when skipped).
func (r *Recorder) Dump(reason string) (string, error) {
	if r == nil || r.dumpDir == "" {
		return "", nil
	}
	now := time.Now()
	last := r.lastDump.Load()
	if last != 0 && now.UnixNano()-last < r.minInterval.Nanoseconds() {
		r.dumpErrors.Inc()
		return "", nil
	}
	if !r.lastDump.CompareAndSwap(last, now.UnixNano()) {
		r.dumpErrors.Inc()
		return "", nil // concurrent trip won the race; one black box suffices
	}
	r.dumpMu.Lock()
	defer r.dumpMu.Unlock()
	if err := os.MkdirAll(r.dumpDir, 0o755); err != nil {
		r.dumpErrors.Inc()
		return "", err
	}
	d := dumpFile{
		Reason:   sanitizeReason(reason),
		UnixNano: now.UnixNano(),
		LastSeq:  r.LastSeq(),
		Events:   r.Snapshot(Filter{}),
	}
	path := filepath.Join(r.dumpDir, fmt.Sprintf("flightrec-%s-%d.json", d.Reason, d.UnixNano))
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		r.dumpErrors.Inc()
		return "", err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		r.dumpErrors.Inc()
		return "", err
	}
	r.dumps.Inc()
	if r.log != nil {
		r.log.Info("flight recorder dumped", "reason", d.Reason, "path", path, "events", len(d.Events))
	}
	r.prune()
	return path, nil
}

// sanitizeReason makes an incident reason safe as a filename fragment.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "manual"
	}
	return strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			return c
		}
		return '_'
	}, reason)
}

// prune deletes the oldest dump files beyond the retention bound.  The
// caller holds dumpMu.
func (r *Recorder) prune() {
	if r.dumpRetain <= 0 {
		return
	}
	matches, err := filepath.Glob(filepath.Join(r.dumpDir, "flightrec-*.json"))
	if err != nil || len(matches) <= r.dumpRetain {
		return
	}
	// Reasons vary in length, so sort by the embedded unix-nano suffix
	// rather than lexically: age order regardless of reason.
	sort.Slice(matches, func(i, j int) bool { return dumpStamp(matches[i]) < dumpStamp(matches[j]) })
	for _, old := range matches[:len(matches)-r.dumpRetain] {
		if err := os.Remove(old); err == nil && r.log != nil {
			r.log.Debug("flight recorder dump pruned", "path", old)
		}
	}
}

// dumpStamp extracts the unix-nano suffix of a dump filename (0 when the
// name does not parse, sorting unparseable files first for deletion).
func dumpStamp(path string) int64 {
	base := strings.TrimSuffix(filepath.Base(path), ".json")
	i := strings.LastIndexByte(base, '-')
	if i < 0 {
		return 0
	}
	var n int64
	for _, c := range base[i+1:] {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int64(c-'0')
	}
	return n
}
