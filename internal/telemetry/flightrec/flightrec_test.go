package flightrec

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestTraceIDHex(t *testing.T) {
	cases := []struct {
		id   uint64
		want string
	}{
		{0, ""},
		{0xabc, "0000000000000abc"},
		{0xdeadbeefcafe0123, "deadbeefcafe0123"},
	}
	for _, c := range cases {
		if got := TraceIDHex(c.id); got != c.want {
			t.Errorf("TraceIDHex(%#x) = %q, want %q", c.id, got, c.want)
		}
	}
}

func TestRecorderSequenceAndWrap(t *testing.T) {
	r := New(Config{Size: 4})
	for i := 1; i <= 10; i++ {
		r.Record(Event{Source: "acqserver", Outcome: "OK", ReqID: uint64(i)})
	}
	if r.LastSeq() != 10 {
		t.Fatalf("LastSeq = %d, want 10", r.LastSeq())
	}
	evs := r.Snapshot(Filter{})
	if len(evs) != 4 {
		t.Fatalf("ring of 4 holds %d events after 10 records", len(evs))
	}
	// Oldest first, and only the newest generation survives the wrap.
	for i, e := range evs {
		if want := uint64(7 + i); e.Seq != want || e.ReqID != want {
			t.Fatalf("event %d = seq %d req %d, want %d", i, e.Seq, e.ReqID, want)
		}
	}
}

func TestRecorderStamps(t *testing.T) {
	r := New(Config{Size: 8})
	start := time.Now().Add(-50 * time.Millisecond)
	r.Record(Event{Source: "acqserver", Outcome: "OK", Start: start})
	e := r.Snapshot(Filter{})[0]
	if e.UnixNano == 0 {
		t.Fatal("UnixNano not stamped")
	}
	if e.TotalNs < (40 * time.Millisecond).Nanoseconds() {
		t.Fatalf("TotalNs = %d, want ≥40ms derived from Start", e.TotalNs)
	}
	long := make([]byte, 2*maxDetailLen)
	for i := range long {
		long[i] = 'x'
	}
	r.Record(Event{Outcome: "INTERNAL", Detail: string(long)})
	evs := r.Snapshot(Filter{Outcome: "internal"})
	if len(evs) != 1 || len(evs[0].Detail) != maxDetailLen {
		t.Fatalf("detail not truncated to %d: %d events, len %d", maxDetailLen, len(evs), len(evs[0].Detail))
	}
}

func TestSnapshotFilter(t *testing.T) {
	r := New(Config{Size: 64})
	for i := 0; i < 10; i++ {
		out := "OK"
		if i%2 == 1 {
			out = "RESOURCE_EXHAUSTED"
		}
		r.Record(Event{Source: "acqserver", Outcome: out, TotalNs: int64(i) * int64(time.Millisecond)})
	}
	r.Record(Event{Source: "gateway", Outcome: "OK"})

	if got := len(r.Snapshot(Filter{Outcome: "resource_exhausted"})); got != 5 {
		t.Fatalf("outcome filter kept %d, want 5", got)
	}
	if got := len(r.Snapshot(Filter{Source: "gateway"})); got != 1 {
		t.Fatalf("source filter kept %d, want 1", got)
	}
	if got := len(r.Snapshot(Filter{MinTotal: 5 * time.Millisecond})); got != 5 {
		t.Fatalf("min-total filter kept %d, want 5 (5..9 ms)", got)
	}
	if got := len(r.Snapshot(Filter{SinceSeq: 9})); got != 2 {
		t.Fatalf("since-seq filter kept %d, want 2", got)
	}
	if got := r.Snapshot(Filter{Limit: 3}); len(got) != 3 || got[2].Seq != 11 {
		t.Fatalf("limit filter = %d events ending at seq %d, want 3 ending at 11", len(got), got[len(got)-1].Seq)
	}
}

func TestRecorderNil(t *testing.T) {
	var r *Recorder
	r.Record(Event{Outcome: "OK"})
	if r.LastSeq() != 0 || r.Snapshot(Filter{}) != nil {
		t.Fatal("nil recorder must read empty")
	}
	if path, err := r.Dump("x"); path != "" || err != nil {
		t.Fatalf("nil Dump = (%q, %v), want no-op", path, err)
	}
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	if rec.Code != 200 {
		t.Fatalf("nil handler status %d", rec.Code)
	}
	var resp eventsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.Count != 0 {
		t.Fatalf("nil handler body: %v %+v", err, resp)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := New(Config{Size: 128})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(Event{Source: "acqserver", Outcome: "OK", Session: uint64(g)})
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, e := range r.Snapshot(Filter{}) {
					if e.Seq == 0 || e.Outcome != "OK" {
						panic(fmt.Sprintf("torn event: %+v", e))
					}
				}
			}
		}()
	}
	wg.Wait()
	if r.LastSeq() != 4000 {
		t.Fatalf("LastSeq = %d, want 4000", r.LastSeq())
	}
}

func TestDumpAndRetention(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	r := New(Config{Size: 8, DumpDir: dir, DumpRetain: 3, MinDumpInterval: time.Nanosecond, Metrics: reg})
	r.Record(Event{Source: "acqserver", Outcome: "OK", TraceID: TraceIDHex(0xabc)})

	path, err := r.Dump("degraded")
	if err != nil || path == "" {
		t.Fatalf("Dump = (%q, %v)", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d dumpFile
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatal(err)
	}
	if d.Reason != "degraded" || d.LastSeq != 1 || len(d.Events) != 1 || d.Events[0].TraceID != "0000000000000abc" {
		t.Fatalf("dump content %+v", d)
	}

	// Retention: reasons of different lengths must still prune oldest-first.
	for i := 0; i < 5; i++ {
		time.Sleep(time.Millisecond) // distinct unixnano stamps
		if _, err := r.Dump(fmt.Sprintf("p%d-longer-reason", i)); err != nil {
			t.Fatal(err)
		}
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "flightrec-*.json"))
	if len(matches) != 3 {
		t.Fatalf("retention kept %d dumps, want 3: %v", len(matches), matches)
	}
	// The survivors must be the newest three.
	for _, m := range matches {
		if filepath.Base(m) == filepath.Base(path) {
			t.Fatalf("oldest dump %s survived retention", path)
		}
	}
}

func TestDumpRateLimit(t *testing.T) {
	dir := t.TempDir()
	r := New(Config{Size: 8, DumpDir: dir, MinDumpInterval: time.Hour})
	r.Record(Event{Outcome: "OK"})
	if path, _ := r.Dump("first"); path == "" {
		t.Fatal("first dump skipped")
	}
	if path, err := r.Dump("second"); path != "" || err != nil {
		t.Fatalf("second dump inside the interval = (%q, %v), want skipped", path, err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "flightrec-*.json"))
	if len(matches) != 1 {
		t.Fatalf("%d dumps on disk, want 1", len(matches))
	}
}

func TestHandlerQueries(t *testing.T) {
	r := New(Config{Size: 64})
	for i := 0; i < 6; i++ {
		out := "OK"
		if i == 5 {
			out = "INTERNAL"
		}
		r.Record(Event{Source: "acqserver", Outcome: out, TotalNs: int64(i+1) * int64(time.Millisecond)})
	}
	h := r.Handler()

	get := func(query string) eventsResponse {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events"+query, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d: %s", query, rec.Code, rec.Body.String())
		}
		var resp eventsResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("GET %s: %v", query, err)
		}
		return resp
	}

	if resp := get(""); resp.LastSeq != 6 || resp.Count != 6 {
		t.Fatalf("unfiltered = %+v", resp)
	}
	if resp := get("?outcome=internal"); resp.Count != 1 || resp.Events[0].Seq != 6 {
		t.Fatalf("outcome query = %+v", resp)
	}
	if resp := get("?since=4"); resp.Count != 2 {
		t.Fatalf("since-seq query = %+v", resp)
	}
	if resp := get("?since=30s"); resp.Count != 6 {
		t.Fatalf("since-duration query = %+v", resp)
	}
	if resp := get("?min_ms=4"); resp.Count != 3 {
		t.Fatalf("min_ms query = %+v", resp)
	}
	if resp := get("?limit=2"); resp.Count != 2 || resp.Events[1].Seq != 6 {
		t.Fatalf("limit query = %+v", resp)
	}
	for _, bad := range []string{"?since=nope", "?min_ms=-1", "?limit=x"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events"+bad, nil))
		if rec.Code != 400 {
			t.Fatalf("GET %s: status %d, want 400", bad, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/events", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status %d, want 405", rec.Code)
	}
}
