// http.go: the recorder's query surface — /debug/events.  An operator (or
// the obs-smoke gate) chasing an exemplar or a burn-rate alarm filters the
// ring live: ?since=SEQ (or a duration like 30s), ?outcome=CODE,
// ?min_ms=N, ?source=TIER, ?limit=N.
package flightrec

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// eventsResponse is the /debug/events JSON document.
type eventsResponse struct {
	// LastSeq is the newest sequence assigned at query time; pass it back
	// as ?since= to poll incrementally.
	LastSeq uint64 `json:"last_seq"`
	// Count is len(Events).
	Count int `json:"count"`
	// Events are the matching wide events, oldest first.
	Events []Event `json:"events"`
}

// Handler returns the /debug/events endpoint.  Query parameters:
//
//	since=N     events after sequence N (a bare integer), or newer than a
//	            Go duration ago (e.g. since=30s)
//	outcome=S   only events with this outcome code (case-insensitive)
//	min_ms=N    only events whose total duration is at least N milliseconds
//	source=S    only events from this tier ("acqserver", "gateway")
//	limit=N     newest N matching events (default 256, max the ring size)
//
// A nil recorder serves an empty (but well-formed) document, so the
// endpoint can be mounted unconditionally.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q := req.URL.Query()
		f := Filter{Outcome: q.Get("outcome"), Source: q.Get("source"), Limit: 256}
		if s := q.Get("since"); s != "" {
			if seq, err := strconv.ParseUint(s, 10, 64); err == nil {
				f.SinceSeq = seq
			} else if d, err := time.ParseDuration(s); err == nil && d > 0 {
				f.Since = time.Now().Add(-d)
			} else {
				http.Error(w, "since: want a sequence number or a duration", http.StatusBadRequest)
				return
			}
		}
		if s := q.Get("min_ms"); s != "" {
			ms, err := strconv.ParseFloat(s, 64)
			if err != nil || ms < 0 {
				http.Error(w, "min_ms: want a non-negative number", http.StatusBadRequest)
				return
			}
			f.MinTotal = time.Duration(ms * float64(time.Millisecond))
		}
		if s := q.Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "limit: want a non-negative integer", http.StatusBadRequest)
				return
			}
			f.Limit = n
		}
		resp := eventsResponse{LastSeq: r.LastSeq(), Events: r.Snapshot(f)}
		resp.Count = len(resp.Events)
		if resp.Events == nil {
			resp.Events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		if req.Method == http.MethodHead {
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
}
