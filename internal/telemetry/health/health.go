// Package health turns raw telemetry into an admission decision: a set of
// declarative SLOs (latency objectives over windowed histograms, bad/total
// ratio budgets over counters) evaluated with multi-window burn rates —
// fast (1 m) to catch a regression as it happens, slow (10 m) to separate
// a blip from a sustained breach — yielding OK / DEGRADED / UNHEALTHY
// with a per-SLO reason an operator can act on.
//
// The burn-rate math follows the SRE error-budget playbook: with budget b
// (the tolerated bad fraction, e.g. 0.01 for a 99% objective) and observed
// bad fraction f over a window, the burn rate is f/b — 1 means the budget
// is being consumed exactly as fast as it accrues.  Status per SLO:
//
//	UNHEALTHY  when both the fast and slow windows burn at or above
//	           Config.UnhealthyBurn — the breach is severe and sustained;
//	           /readyz goes non-200 so load balancers stop sending traffic
//	DEGRADED   when the fast window burns at or above Config.DegradedBurn —
//	           the serving layer should tighten admission (acqserver halves
//	           its effective queue depth) while the budget is burning
//	OK         otherwise, including "insufficient data" (fewer than
//	           Config.MinEvents events in the fast window)
//
// The overall status is the worst per-SLO status.  Evaluation is pull
// driven: Tick (or the Run loop) samples counters into a rotation ring and
// reads Histogram.WindowCounts — the same scrape-time rotation that feeds
// the /metrics windowed families — so the evaluator adds no load to any
// hot path.
package health

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Status is a three-state health verdict, ordered by severity.
type Status int

// The three verdicts: Statuses order by severity so the overall status is
// a max over SLOs.
const (
	// OK means every objective is inside budget (or lacks data).
	OK Status = iota
	// Degraded means a fast-window burn: tighten admission, keep serving.
	Degraded
	// Unhealthy means a severe, sustained burn: stop sending traffic.
	Unhealthy
)

// String returns the operator-facing verdict name.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Degraded:
		return "degraded"
	case Unhealthy:
		return "unhealthy"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// MarshalJSON renders the verdict as its lower-case name, so /readyz and
// imsload -json reports read naturally.
func (s Status) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses the verdict names written by MarshalJSON (unknown
// names read as OK so old consumers tolerate new states).
func (s *Status) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"degraded"`:
		*s = Degraded
	case `"unhealthy"`:
		*s = Unhealthy
	default:
		*s = OK
	}
	return nil
}

// Config tunes the evaluator; zero fields take the defaults noted.
type Config struct {
	// FastWindow is the burn window that catches regressions as they
	// happen (default 1 m).
	FastWindow time.Duration
	// SlowWindow is the burn window that confirms a breach is sustained
	// (default 10 m).  Must not exceed what the telemetry window ring
	// retains (~10.5 m at the defaults).
	SlowWindow time.Duration
	// DegradedBurn is the fast-window burn rate at which an SLO turns
	// DEGRADED (default 2: consuming budget twice as fast as it accrues).
	DegradedBurn float64
	// UnhealthyBurn is the burn rate that, sustained across both windows,
	// turns an SLO UNHEALTHY (default 10).
	UnhealthyBurn float64
	// MinEvents is the fast-window event count below which an SLO reports
	// OK with reason "insufficient data" instead of flapping on a handful
	// of samples (default 20).
	MinEvents int64
	// Metrics, when non-nil, receives the health_* gauge families
	// (health_status, health_slo_status, health_slo_burn) on every Tick,
	// so health rides the same /metrics surface as everything else.
	Metrics *telemetry.Registry
	// OnTransition, when non-nil, is called from Tick whenever the overall
	// status changes, outside the evaluator's lock (the callback may call
	// Status or Report freely).  The daemon wires the flight recorder's
	// black-box dump here, so every slide into DEGRADED/UNHEALTHY leaves
	// an incident file (see internal/telemetry/flightrec).
	OnTransition func(from, to Status, rep Report)
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.FastWindow <= 0 {
		c.FastWindow = time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 10 * time.Minute
	}
	if c.DegradedBurn <= 0 {
		c.DegradedBurn = 2
	}
	if c.UnhealthyBurn <= 0 {
		c.UnhealthyBurn = 10
	}
	if c.MinEvents <= 0 {
		c.MinEvents = 20
	}
	return c
}

// LatencySLO declares a latency objective: at least Target of the
// observations across Hists must land at or under ThresholdNs.  The
// threshold rounds up to the enclosing power-of-two bucket bound (the
// within-2x granularity of telemetry histograms).
type LatencySLO struct {
	// Name identifies the SLO in reports and metric labels.
	Name string
	// Hists are the latency histograms pooled into one objective (e.g.
	// acq_process_ns for both compute paths).
	Hists []*telemetry.Histogram
	// ThresholdNs is the latency objective in nanoseconds.
	ThresholdNs float64
	// Target is the required fraction of observations within threshold,
	// in (0,1) — e.g. 0.99; the error budget is 1−Target.
	Target float64
}

// RatioSLO declares a budget on a bad/total event ratio sampled from
// cumulative counter readings (shed rate, error rate).
type RatioSLO struct {
	// Name identifies the SLO in reports and metric labels.
	Name string
	// Bad returns the cumulative bad-event count (e.g. summed shed
	// counters).  Sampled on every Tick.
	Bad func() int64
	// Total returns the cumulative event count the budget is over.
	Total func() int64
	// Budget is the tolerated bad fraction in (0,1) — e.g. 0.05.
	Budget float64
}

// AnomalySLO declares an anomaly-detector-backed objective (see
// internal/telemetry/tsdb): Source is polled on every Tick and reports
// the detector's normalized burn (1.0 = the detector threshold), whether
// an anomalous episode is currently active, and a reason while one is.
// An active episode turns the SLO DEGRADED — anomalies tighten admission
// and trip OnTransition (flight-recorder dumps) but never force
// UNHEALTHY on their own, because a statistical detector should shed
// load, not take a backend out of rotation.
type AnomalySLO struct {
	// Name identifies the SLO in reports and metric labels.
	Name string
	// Source reports (burn, active, reason) for the current instant.
	Source func() (burn float64, active bool, reason string)
}

// ratioSample is one Tick's cumulative counter reading.
type ratioSample struct {
	when       time.Time
	bad, total int64
}

// ratioRing retains cumulative samples for window lookups, mirroring the
// histogram rotation ring (telemetry.WindowSlots × WindowSlotDuration).
type ratioRing struct {
	n, head int
	slots   [telemetry.WindowSlots]ratioSample
}

// push records a sample if the newest one is at least a slot duration old.
func (r *ratioRing) push(s ratioSample) {
	if r.n > 0 && s.when.Sub(r.slots[r.head].when) < telemetry.WindowSlotDuration {
		return
	}
	idx := 0
	if r.n > 0 {
		idx = (r.head + 1) % len(r.slots)
	}
	r.slots[idx] = s
	r.head = idx
	if r.n < len(r.slots) {
		r.n++
	}
}

// baseline returns the newest sample at least window old (or the oldest
// available), and false on an empty ring.
func (r *ratioRing) baseline(now time.Time, window time.Duration) (ratioSample, bool) {
	if r.n == 0 {
		return ratioSample{}, false
	}
	cutoff := now.Add(-window)
	for i := 0; i < r.n; i++ {
		j := (r.head - i + len(r.slots)) % len(r.slots)
		if !r.slots[j].when.After(cutoff) {
			return r.slots[j], true
		}
	}
	oldest := (r.head - (r.n - 1) + len(r.slots)) % len(r.slots)
	return r.slots[oldest], true
}

// slo is one registered objective plus its evaluation state.
type slo struct {
	name    string
	budget  float64
	latency *LatencySLO // nil unless a latency SLO
	ratio   *RatioSLO   // nil unless a ratio SLO
	anomaly *AnomalySLO // nil unless an anomaly SLO
	ring    ratioRing   // ratio SLOs only
	cur     ratioSample // the current Tick's fresh counter reading

	statusG   *telemetry.Gauge
	burnFastG *telemetry.Gauge
	burnSlowG *telemetry.Gauge
}

// SLOReport is one objective's verdict in a Report.
type SLOReport struct {
	// Name is the SLO's declared name.
	Name string `json:"name"`
	// Status is the per-SLO verdict.
	Status Status `json:"status"`
	// Reason explains a non-OK verdict (or notes insufficient data).
	Reason string `json:"reason,omitempty"`
	// BurnFast and BurnSlow are the budget burn rates over the two
	// windows (1 = consuming budget exactly as fast as it accrues).
	BurnFast float64 `json:"burn_fast"`
	BurnSlow float64 `json:"burn_slow"`
	// BadFast and TotalFast are the fast-window event counts behind
	// BurnFast.
	BadFast   int64 `json:"bad_fast"`
	TotalFast int64 `json:"total_fast"`
}

// Report is one evaluation's full outcome.
type Report struct {
	// Status is the overall verdict: the worst per-SLO status.
	Status Status `json:"status"`
	// SLOs lists every objective in registration order.
	SLOs []SLOReport `json:"slos"`
}

// Evaluator holds the declared SLOs and their last verdict.  Construct
// with New, add objectives, then drive with Tick or Run.  Safe for
// concurrent use; Status and Report are cheap enough for per-request
// admission checks.
type Evaluator struct {
	cfg Config

	mu   sync.Mutex
	slos []*slo
	last Report

	overallG *telemetry.Gauge
}

// New builds an evaluator with cfg (zero fields defaulted; see Config).
func New(cfg Config) *Evaluator {
	cfg = cfg.withDefaults()
	e := &Evaluator{cfg: cfg}
	e.overallG = cfg.Metrics.Gauge("health_status",
		"overall health verdict: 0 ok, 1 degraded, 2 unhealthy")
	e.last = Report{Status: OK}
	return e
}

// newSLO wires the shared per-SLO state and gauges.
func (e *Evaluator) newSLO(name string, budget float64) *slo {
	l := telemetry.L("slo", name)
	return &slo{
		name:    name,
		budget:  budget,
		statusG: e.cfg.Metrics.Gauge("health_slo_status", "per-SLO verdict: 0 ok, 1 degraded, 2 unhealthy", l),
		burnFastG: e.cfg.Metrics.Gauge("health_slo_burn", "error-budget burn rate per window",
			l, telemetry.L("window", "fast")),
		burnSlowG: e.cfg.Metrics.Gauge("health_slo_burn", "error-budget burn rate per window",
			l, telemetry.L("window", "slow")),
	}
}

// AddLatency registers a latency objective.  Invalid declarations (no
// histograms, Target outside (0,1)) panic: SLOs are wired at startup and a
// bad one is a programming error.
func (e *Evaluator) AddLatency(s LatencySLO) {
	if len(s.Hists) == 0 || s.Target <= 0 || s.Target >= 1 || s.ThresholdNs <= 0 {
		panic(fmt.Sprintf("health: invalid latency SLO %q", s.Name))
	}
	decl := s
	sl := e.newSLO(s.Name, 1-s.Target)
	sl.latency = &decl
	e.mu.Lock()
	defer e.mu.Unlock()
	e.slos = append(e.slos, sl)
}

// AddRatio registers a bad/total ratio budget.  Invalid declarations (nil
// samplers, Budget outside (0,1)) panic.
func (e *Evaluator) AddRatio(s RatioSLO) {
	if s.Bad == nil || s.Total == nil || s.Budget <= 0 || s.Budget >= 1 {
		panic(fmt.Sprintf("health: invalid ratio SLO %q", s.Name))
	}
	decl := s
	sl := e.newSLO(s.Name, s.Budget)
	sl.ratio = &decl
	e.mu.Lock()
	defer e.mu.Unlock()
	e.slos = append(e.slos, sl)
}

// AddAnomaly registers an anomaly-detector-backed objective.  A nil
// Source panics, matching the other Add* validations.
func (e *Evaluator) AddAnomaly(s AnomalySLO) {
	if s.Source == nil {
		panic(fmt.Sprintf("health: invalid anomaly SLO %q", s.Name))
	}
	decl := s
	sl := e.newSLO(s.Name, 1)
	sl.anomaly = &decl
	e.mu.Lock()
	defer e.mu.Unlock()
	e.slos = append(e.slos, sl)
}

// latencyThresholdBucket returns the first bucket index whose upper bound
// covers the threshold; observations in later buckets count against the
// budget.
func latencyThresholdBucket(thresholdNs float64) int {
	for i := 0; i < telemetry.NumBuckets; i++ {
		if telemetry.BucketUpperBound(i) >= thresholdNs {
			return i
		}
	}
	return telemetry.NumBuckets - 1
}

// window computes one SLO's (bad, total) over a window ending at now.
func (sl *slo) window(now time.Time, w time.Duration) (bad, total int64) {
	switch {
	case sl.latency != nil:
		cut := latencyThresholdBucket(sl.latency.ThresholdNs)
		for _, h := range sl.latency.Hists {
			counts, _ := h.WindowCounts(now, w)
			for i, c := range counts {
				total += c
				if i > cut {
					bad += c
				}
			}
		}
	case sl.ratio != nil:
		base, ok := sl.ring.baseline(now, w)
		if !ok {
			return 0, 0
		}
		bad = sl.cur.bad - base.bad
		total = sl.cur.total - base.total
		if bad < 0 {
			bad = 0
		}
		if total < 0 {
			total = 0
		}
	}
	return bad, total
}

// Tick samples every SLO's sources, evaluates burn rates against both
// windows as of now, stores and returns the Report, and refreshes the
// health_* gauges.  When the overall status changes, Config.OnTransition
// fires after the lock is released.  Drive it from Run or call it directly
// (tests pass a synthetic clock).
func (e *Evaluator) Tick(now time.Time) Report {
	e.mu.Lock()
	rep := Report{Status: OK, SLOs: make([]SLOReport, 0, len(e.slos))}
	for _, sl := range e.slos {
		if sl.ratio != nil {
			sl.cur = ratioSample{when: now, bad: sl.ratio.Bad(), total: sl.ratio.Total()}
			sl.ring.push(sl.cur)
		}
		sr := e.evaluate(sl, now)
		if sr.Status > rep.Status {
			rep.Status = sr.Status
		}
		sl.statusG.Set(float64(sr.Status))
		sl.burnFastG.Set(sr.BurnFast)
		sl.burnSlowG.Set(sr.BurnSlow)
		rep.SLOs = append(rep.SLOs, sr)
	}
	e.overallG.Set(float64(rep.Status))
	prev := e.last.Status
	e.last = rep
	e.mu.Unlock()
	if rep.Status != prev && e.cfg.OnTransition != nil {
		e.cfg.OnTransition(prev, rep.Status, rep)
	}
	return rep
}

// evaluate computes one SLO's verdict at now.  The caller holds e.mu.
func (e *Evaluator) evaluate(sl *slo, now time.Time) SLOReport {
	if sl.anomaly != nil {
		burn, active, reason := sl.anomaly.Source()
		sr := SLOReport{Name: sl.name, BurnFast: burn, BurnSlow: burn}
		if active {
			sr.Status = Degraded
			sr.Reason = reason
			if sr.Reason == "" {
				sr.Reason = fmt.Sprintf("anomaly detector active (burn %.1fx)", burn)
			}
		}
		return sr
	}
	badFast, totalFast := sl.window(now, e.cfg.FastWindow)
	badSlow, totalSlow := sl.window(now, e.cfg.SlowWindow)
	sr := SLOReport{Name: sl.name, BadFast: badFast, TotalFast: totalFast}
	if totalFast > 0 {
		sr.BurnFast = (float64(badFast) / float64(totalFast)) / sl.budget
	}
	if totalSlow > 0 {
		sr.BurnSlow = (float64(badSlow) / float64(totalSlow)) / sl.budget
	}
	switch {
	case totalFast < e.cfg.MinEvents:
		sr.Status = OK
		sr.Reason = fmt.Sprintf("insufficient data (%d events in fast window)", totalFast)
	case sr.BurnFast >= e.cfg.UnhealthyBurn && sr.BurnSlow >= e.cfg.UnhealthyBurn:
		sr.Status = Unhealthy
		sr.Reason = fmt.Sprintf("budget burning %.1fx fast / %.1fx slow (threshold %.1fx sustained)",
			sr.BurnFast, sr.BurnSlow, e.cfg.UnhealthyBurn)
	case sr.BurnFast >= e.cfg.DegradedBurn:
		sr.Status = Degraded
		sr.Reason = fmt.Sprintf("budget burning %.1fx over the fast window (threshold %.1fx)",
			sr.BurnFast, e.cfg.DegradedBurn)
	default:
		sr.Status = OK
	}
	return sr
}

// Report returns the most recent Tick's outcome (an all-OK empty report
// before the first Tick).
func (e *Evaluator) Report() Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.last
}

// Status returns the most recent overall verdict — cheap enough to call
// per admission decision.
func (e *Evaluator) Status() Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.last.Status
}

// Run ticks the evaluator every interval until ctx is cancelled — the
// daemon's health loop.  It ticks once immediately so /readyz has a
// verdict before the first interval elapses.
func (e *Evaluator) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	e.Tick(time.Now())
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			e.Tick(now)
		}
	}
}
