package health

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// t0 is an arbitrary fixed instant for deterministic evaluation tests.
var t0 = time.Unix(1_700_000_000, 0)

// tickOver drives the evaluator with one Tick per telemetry slot duration
// across span, returning the final report.  between runs before each tick
// so tests can feed observations into each slot.
func tickOver(e *Evaluator, from time.Time, span time.Duration, between func(now time.Time)) Report {
	var rep Report
	steps := int(span / telemetry.WindowSlotDuration)
	for i := 0; i <= steps; i++ {
		now := from.Add(time.Duration(i) * telemetry.WindowSlotDuration)
		if between != nil {
			between(now)
		}
		rep = e.Tick(now)
	}
	return rep
}

func TestLatencySLOBurn(t *testing.T) {
	var h telemetry.Histogram
	e := New(Config{})
	e.AddLatency(LatencySLO{
		Name:        "frame_latency",
		Hists:       []*telemetry.Histogram{&h},
		ThresholdNs: 1 << 20, // ~1 ms
		Target:      0.99,
	})

	// Warm-up: plenty of fast observations → OK.
	rep := tickOver(e, t0, 2*time.Minute, func(time.Time) {
		for i := 0; i < 100; i++ {
			h.Observe(1000) // 1 µs, well under threshold
		}
	})
	if rep.Status != OK {
		t.Fatalf("all-fast status = %v, want ok: %+v", rep.Status, rep.SLOs)
	}

	// A fast-window regression: 10%% of observations blow the threshold
	// (10x the 1%% budget) → DEGRADED, not yet UNHEALTHY (slow window
	// still mostly healthy history).
	next := t0.Add(2*time.Minute + telemetry.WindowSlotDuration)
	rep = tickOver(e, next, time.Minute, func(time.Time) {
		for i := 0; i < 90; i++ {
			h.Observe(1000)
		}
		for i := 0; i < 10; i++ {
			h.Observe(1 << 24) // ~16 ms, over threshold
		}
	})
	if rep.Status != Degraded {
		t.Fatalf("fast-burn status = %v, want degraded: %+v", rep.Status, rep.SLOs)
	}
	if sr := rep.SLOs[0]; sr.BurnFast < 2 || sr.Reason == "" {
		t.Errorf("fast-burn report = %+v, want burn >= 2 with a reason", sr)
	}

	// Sustained: keep burning for the whole slow window → UNHEALTHY.
	next = next.Add(time.Minute + telemetry.WindowSlotDuration)
	rep = tickOver(e, next, 11*time.Minute, func(time.Time) {
		for i := 0; i < 80; i++ {
			h.Observe(1000)
		}
		for i := 0; i < 20; i++ {
			h.Observe(1 << 24)
		}
	})
	if rep.Status != Unhealthy {
		t.Fatalf("sustained-burn status = %v, want unhealthy: %+v", rep.Status, rep.SLOs)
	}
}

func TestRatioSLOBurn(t *testing.T) {
	var bad, total atomic.Int64
	e := New(Config{})
	e.AddRatio(RatioSLO{
		Name:   "shed_rate",
		Bad:    bad.Load,
		Total:  total.Load,
		Budget: 0.05,
	})

	// Healthy traffic: 1% shed, well inside the 5% budget.
	rep := tickOver(e, t0, 2*time.Minute, func(time.Time) {
		total.Add(1000)
		bad.Add(10)
	})
	if rep.Status != OK {
		t.Fatalf("healthy shed status = %v, want ok: %+v", rep.Status, rep.SLOs)
	}

	// Shed storm: 50% shed = 10x budget, sustained across both windows.
	next := t0.Add(2*time.Minute + telemetry.WindowSlotDuration)
	rep = tickOver(e, next, 11*time.Minute, func(time.Time) {
		total.Add(1000)
		bad.Add(500)
	})
	if rep.Status != Unhealthy {
		t.Fatalf("shed-storm status = %v, want unhealthy: %+v", rep.Status, rep.SLOs)
	}
}

func TestInsufficientDataReadsOK(t *testing.T) {
	var h telemetry.Histogram
	e := New(Config{})
	e.AddLatency(LatencySLO{Name: "lat", Hists: []*telemetry.Histogram{&h}, ThresholdNs: 1000, Target: 0.99})
	// A handful of terrible observations must not flap the verdict.
	for i := 0; i < 5; i++ {
		h.Observe(1e9)
	}
	rep := tickOver(e, t0, time.Minute, nil)
	if rep.Status != OK {
		t.Fatalf("sparse-data status = %v, want ok", rep.Status)
	}
	if !strings.Contains(rep.SLOs[0].Reason, "insufficient data") {
		t.Errorf("reason = %q, want insufficient data", rep.SLOs[0].Reason)
	}
}

func TestHealthGaugesPublished(t *testing.T) {
	reg := telemetry.NewRegistry()
	var bad, total atomic.Int64
	e := New(Config{Metrics: reg})
	e.AddRatio(RatioSLO{Name: "err", Bad: bad.Load, Total: total.Load, Budget: 0.01})
	tickOver(e, t0, 11*time.Minute, func(time.Time) {
		total.Add(1000)
		bad.Add(500)
	})

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"health_status 2",
		`health_slo_status{slo="err"} 2`,
		`health_slo_burn{slo="err",window="fast"}`,
		`health_slo_burn{slo="err",window="slow"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestInvalidSLOsPanic(t *testing.T) {
	e := New(Config{})
	for name, add := range map[string]func(){
		"latency without hists": func() { e.AddLatency(LatencySLO{Name: "x", ThresholdNs: 1, Target: 0.5}) },
		"latency bad target": func() {
			var h telemetry.Histogram
			e.AddLatency(LatencySLO{Name: "x", Hists: []*telemetry.Histogram{&h}, ThresholdNs: 1, Target: 1})
		},
		"ratio nil samplers": func() { e.AddRatio(RatioSLO{Name: "x", Budget: 0.1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			add()
		}()
	}
}

func TestLivenessHandler(t *testing.T) {
	h := LivenessHandler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "alive") {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/healthz", nil))
	if rec.Code != 405 {
		t.Fatalf("POST healthz = %d, want 405", rec.Code)
	}
}

func TestReadinessHandlerTransitions(t *testing.T) {
	var bad, total atomic.Int64
	e := New(Config{})
	e.AddRatio(RatioSLO{Name: "err", Bad: bad.Load, Total: total.Load, Budget: 0.01})
	var draining atomic.Bool
	h := e.ReadinessHandler(func() (bool, string) {
		if draining.Load() {
			return true, "draining"
		}
		return false, ""
	})
	get := func() (int, ReadyReport) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
		var rep ReadyReport
		if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
			t.Fatalf("readyz body: %v\n%s", err, rec.Body.String())
		}
		return rec.Code, rep
	}

	// Healthy and serving.
	tickOver(e, t0, time.Minute, func(time.Time) { total.Add(1000) })
	if code, rep := get(); code != 200 || !rep.Ready {
		t.Fatalf("healthy readyz = %d %+v, want 200 ready", code, rep)
	}

	// UNHEALTHY burn flips readiness with the SLO's reason.
	tickOver(e, t0.Add(2*time.Minute), 11*time.Minute, func(time.Time) {
		total.Add(1000)
		bad.Add(500)
	})
	code, rep := get()
	if code != 503 || rep.Ready {
		t.Fatalf("unhealthy readyz = %d %+v, want 503", code, rep)
	}
	if !strings.Contains(rep.Reason, "err") {
		t.Errorf("unhealthy reason = %q, want the SLO named", rep.Reason)
	}

	// Drain signal wins regardless of SLO state.
	// SLO state remains unhealthy; the drain reason must still surface.
	draining.Store(true)
	code, rep = get()
	if code != 503 || rep.Reason != "draining" {
		t.Fatalf("draining readyz = %d %+v, want 503 draining", code, rep)
	}

	// A nil evaluator is mountable and ready.
	var nilE *Evaluator
	rec := httptest.NewRecorder()
	nilE.ReadinessHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("nil evaluator readyz = %d, want 200", rec.Code)
	}
}

func TestStatusJSONRoundTrip(t *testing.T) {
	for _, s := range []Status{OK, Degraded, Unhealthy} {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Status
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != s {
			t.Errorf("status %v round-tripped to %v", s, back)
		}
	}
}

// TestOnTransition proves the incident hook (what imsd wires to the
// flight-recorder dump) fires exactly on status changes, with the report
// that carried the verdict.
func TestOnTransition(t *testing.T) {
	var h telemetry.Histogram
	type hop struct{ from, to Status }
	var hops []hop
	e := New(Config{
		OnTransition: func(from, to Status, rep Report) {
			if rep.Status != to {
				t.Errorf("callback report status %v != to %v", rep.Status, to)
			}
			hops = append(hops, hop{from, to})
		},
	})
	e.AddLatency(LatencySLO{
		Name:        "frame_latency",
		Hists:       []*telemetry.Histogram{&h},
		ThresholdNs: 1 << 20,
		Target:      0.99,
	})

	// Healthy warm-up: staying OK is not a transition.
	tickOver(e, t0, 2*time.Minute, func(time.Time) {
		for i := 0; i < 100; i++ {
			h.Observe(1000)
		}
	})
	if len(hops) != 0 {
		t.Fatalf("callback fired %d times while steadily OK: %v", len(hops), hops)
	}

	// Burn the fast window → exactly one OK→DEGRADED hop even though the
	// evaluator keeps ticking in the degraded state.
	next := t0.Add(2*time.Minute + telemetry.WindowSlotDuration)
	rep := tickOver(e, next, time.Minute, func(time.Time) {
		for i := 0; i < 90; i++ {
			h.Observe(1000)
		}
		for i := 0; i < 10; i++ {
			h.Observe(1 << 24)
		}
	})
	if rep.Status != Degraded {
		t.Fatalf("burn status = %v, want degraded", rep.Status)
	}
	if len(hops) != 1 || hops[0] != (hop{OK, Degraded}) {
		t.Fatalf("hops = %v, want exactly [OK->Degraded]", hops)
	}

	// Recovery fires the way back down too.
	next = next.Add(time.Minute + telemetry.WindowSlotDuration)
	rep = tickOver(e, next, 12*time.Minute, func(time.Time) {
		for i := 0; i < 100; i++ {
			h.Observe(1000)
		}
	})
	if rep.Status != OK {
		t.Fatalf("recovery status = %v, want ok", rep.Status)
	}
	if len(hops) < 2 || hops[len(hops)-1].to != OK {
		t.Fatalf("hops = %v, want a final transition back to OK", hops)
	}
}

func TestAnomalySLO(t *testing.T) {
	var (
		burn   float64
		active bool
		reason string
	)
	e := New(Config{})
	e.AddAnomaly(AnomalySLO{
		Name:   "anomaly_frame_latency_p99",
		Source: func() (float64, bool, string) { return burn, active, reason },
	})

	// Quiet detector: score well under threshold reads OK and the burn
	// gauges carry the normalized score verbatim.
	burn = 0.2
	rep := e.Tick(t0)
	if rep.Status != OK {
		t.Fatalf("quiet status = %v, want ok: %+v", rep.Status, rep.SLOs)
	}
	if sr := rep.SLOs[0]; sr.BurnFast != 0.2 || sr.BurnSlow != 0.2 {
		t.Fatalf("quiet burns = %+v, want 0.2/0.2", sr)
	}

	// Tripped: even an enormous score only degrades — anomaly SLOs are
	// advisory (relative to the process's own baseline) and must never
	// take readiness down on their own.
	burn, active, reason = 9.5, true, "p99 9.5x above baseline"
	rep = e.Tick(t0.Add(time.Second))
	if rep.Status != Degraded {
		t.Fatalf("tripped status = %v, want degraded: %+v", rep.Status, rep.SLOs)
	}
	if sr := rep.SLOs[0]; sr.Reason != "p99 9.5x above baseline" {
		t.Fatalf("tripped reason = %q, want the detector's", sr.Reason)
	}

	// An active detector with no reason still explains itself.
	reason = ""
	rep = e.Tick(t0.Add(2 * time.Second))
	if sr := rep.SLOs[0]; !strings.Contains(sr.Reason, "anomaly detector active") {
		t.Fatalf("fallback reason = %q", sr.Reason)
	}

	// Recovery is immediate: no window hysteresis of its own (the
	// detector's Hold already provides it).
	burn, active = 0.1, false
	rep = e.Tick(t0.Add(3 * time.Second))
	if rep.Status != OK {
		t.Fatalf("recovered status = %v, want ok: %+v", rep.Status, rep.SLOs)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("AddAnomaly with nil Source did not panic")
		}
	}()
	e.AddAnomaly(AnomalySLO{Name: "anomaly_bad"})
}
