// http.go: the serving surface of the health verdict — the /healthz
// liveness and /readyz readiness endpoints a daemon mounts next to
// /metrics.  Liveness answers "is the process running" (always 200 while
// it is); readiness answers "is it safe to send traffic here" and goes
// 503 during drain and under a sustained UNHEALTHY burn, with the full
// SLO report as a JSON body either way so an operator's curl explains
// itself.
package health

import (
	"encoding/json"
	"net/http"
)

// LivenessHandler returns the /healthz handler: 200 with a tiny JSON body
// for GET/HEAD as long as the process can serve HTTP at all.  Orchestrators
// restart the process when this stops answering; it must not depend on
// SLO state (an unhealthy-but-alive daemon should be drained, not killed).
func LivenessHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		if req.Method == http.MethodHead {
			return
		}
		_, _ = w.Write([]byte(`{"status":"alive"}` + "\n"))
	})
}

// ReadyReport is the /readyz response body: the readiness verdict plus the
// evaluator's latest SLO report.
type ReadyReport struct {
	// Ready mirrors the HTTP status: true on 200, false on 503.
	Ready bool `json:"ready"`
	// Reason explains a not-ready verdict ("draining", or the unhealthy
	// SLO's reason).
	Reason string `json:"reason,omitempty"`
	// Health is the evaluator's most recent report.
	Health Report `json:"health"`
}

// ReadinessHandler returns the /readyz handler.  notReady, when non-nil,
// is consulted first (the daemon's drain signal: report true with a reason
// once SIGTERM lands, so load balancers stop routing before connections
// die); otherwise readiness follows the evaluator — UNHEALTHY is 503,
// everything else (including DEGRADED, which still serves) is 200.  The
// body is always the full ReadyReport.  A nil Evaluator is always ready
// unless notReady fires, so the endpoint can be mounted unconditionally.
func (e *Evaluator) ReadinessHandler(notReady func() (bool, string)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rep := ReadyReport{Ready: true}
		if e != nil {
			rep.Health = e.Report()
		}
		if notReady != nil {
			if not, reason := notReady(); not {
				rep.Ready, rep.Reason = false, reason
			}
		}
		if rep.Ready && rep.Health.Status == Unhealthy {
			rep.Ready = false
			rep.Reason = unhealthyReason(rep.Health)
		}
		w.Header().Set("Content-Type", "application/json")
		if rep.Ready {
			w.WriteHeader(http.StatusOK)
		} else {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		if req.Method == http.MethodHead {
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
}

// unhealthyReason names the first unhealthy SLO for the 503 body.
func unhealthyReason(rep Report) string {
	for _, s := range rep.SLOs {
		if s.Status == Unhealthy {
			return "slo " + s.Name + ": " + s.Reason
		}
	}
	return "unhealthy"
}
