// histogram.go: the distribution metric — a fixed set of log-scale
// (power-of-two) buckets updated with lock-free atomics — plus the span
// timer that feeds wall-clock durations into one.
package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram.  Bucket 0 holds
// observations <= 1; bucket i (1 <= i < NumBuckets-1) holds observations in
// (2^(i-1), 2^i]; the last bucket holds everything larger (the +Inf
// bucket).  The range therefore spans 1 .. 2^38 — nanosecond latencies up
// to ~4.5 minutes, byte sizes up to 256 GiB, queue depths, cycle counts.
const NumBuckets = 40

// BucketUpperBound returns the inclusive upper bound of bucket i
// (math.Inf(1) for the last bucket).
func BucketUpperBound(i int) float64 {
	if i >= NumBuckets-1 {
		return math.Inf(1)
	}
	return math.Ldexp(1, i)
}

// bucketIndex maps an observation to its bucket.
func bucketIndex(v float64) int {
	if !(v > 1) { // also catches NaN, zero and negatives
		return 0
	}
	e := math.Ilogb(v) // floor(log2 v)
	i := e
	if math.Ldexp(1, e) < v {
		i++ // not an exact power of two: round the bound up
	}
	if i >= NumBuckets-1 {
		return NumBuckets - 1
	}
	return i
}

// Histogram counts observations into fixed log-scale buckets and tracks
// their sum.  The zero value is ready to use; methods on a nil *Histogram
// are no-ops.  The observation count is always derivable as the sum of the
// bucket counts, so snapshots are internally consistent by construction.
// Alongside the cumulative state, a rotation ring of bucket snapshots
// (window.go) serves rolling-window reads — WindowCounts, WindowQuantile —
// without ever being touched by Observe.
//
// A histogram can additionally retain one exemplar per bucket — the most
// recent trace id, value and timestamp that landed there — after
// EnableExemplars; see ObserveExemplar.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	sumBits atomic.Uint64
	win     histWindow
	ex      atomic.Pointer[exemplarSet]
}

// Exemplar is one retained observation joining a histogram bucket to the
// trace that produced it: the trace id, the observed value, and when it
// was observed.  The zero Exemplar (TraceID 0) means "none retained".
type Exemplar struct {
	// TraceID is the trace identity of the retained observation.
	TraceID uint64
	// Value is the observed value.
	Value float64
	// UnixNano is when the observation was recorded.
	UnixNano int64
}

// exemplarSet is the per-bucket exemplar storage: three parallel atomic
// arrays (trace id, value bits, timestamp).  The three stores per capture
// are individually atomic but not joint — under write contention on one
// bucket a reader may pair a trace id with a neighbouring capture's value
// or timestamp.  All candidates are recent observations of the same
// bucket, so the join an exemplar exists for (trace id → span tree) is
// never misled, and the hot path stays free of locks and allocations.
type exemplarSet struct {
	ids  [NumBuckets]atomic.Uint64
	vals [NumBuckets]atomic.Uint64
	ts   [NumBuckets]atomic.Int64
}

// EnableExemplars switches on per-bucket exemplar retention and returns
// the histogram for chaining.  Call it once at wiring time, before the
// histogram is shared; histograms that never enable it pay only an atomic
// nil-check per ObserveExemplar.  No-op on a nil receiver.
func (h *Histogram) EnableExemplars() *Histogram {
	if h != nil && h.ex.Load() == nil {
		h.ex.Store(&exemplarSet{})
	}
	return h
}

// ObserveExemplar records one observation like Observe and, when exemplar
// retention is enabled and traceID is nonzero, swaps the observation in as
// its bucket's exemplar.  The capture path performs only atomic stores —
// zero allocations (gated by the allocgate suite).
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	if h == nil {
		return
	}
	h.Observe(v)
	ex := h.ex.Load()
	if ex == nil || traceID == 0 {
		return
	}
	i := bucketIndex(v)
	ex.ids[i].Store(traceID)
	ex.vals[i].Store(math.Float64bits(v))
	ex.ts[i].Store(time.Now().UnixNano())
}

// Exemplars copies the retained per-bucket exemplars.  Buckets without a
// capture (and every bucket of a histogram that never enabled retention,
// or a nil receiver) read as the zero Exemplar.
func (h *Histogram) Exemplars() [NumBuckets]Exemplar {
	var out [NumBuckets]Exemplar
	if h == nil {
		return out
	}
	ex := h.ex.Load()
	if ex == nil {
		return out
	}
	for i := range out {
		id := ex.ids[i].Load()
		if id == 0 {
			continue
		}
		out[i] = Exemplar{
			TraceID:  id,
			Value:    math.Float64frombits(ex.vals[i].Load()),
			UnixNano: ex.ts[i].Load(),
		}
	}
	return out
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observations (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Counts returns a copy of the per-bucket counts.
func (h *Histogram) Counts() [NumBuckets]int64 {
	var out [NumBuckets]int64
	if h == nil {
		return out
	}
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts,
// returning the geometric midpoint of the bucket holding the quantile — a
// within-2x estimate by construction of the power-of-two buckets.  It is
// total on its domain: an empty or nil histogram yields 0 (never NaN or
// ±Inf), q outside [0,1] is clamped, and a NaN q reads as 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return QuantileOfCounts(h.Counts(), q)
}

// QuantileOfCounts estimates the q-quantile of an arbitrary bucket-count
// vector laid out like a Histogram's (see NumBuckets).  Callers that need
// the quantile of a sub-interval of a long-lived histogram can snapshot
// Counts before and after, subtract, and pass the difference here (or use
// Histogram.WindowCounts, which maintains those snapshots itself).  Like
// Quantile it is total: empty counts yield 0, never NaN or ±Inf; q is
// clamped to [0,1] and a NaN q reads as 0.
func QuantileOfCounts(counts [NumBuckets]int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			switch i {
			case 0:
				return 1
			case NumBuckets - 1:
				return math.Ldexp(1, NumBuckets-2) // lower bound of the overflow bucket
			default:
				lo := math.Ldexp(1, i-1)
				hi := math.Ldexp(1, i)
				return math.Sqrt(lo * hi)
			}
		}
	}
	return 0
}

// Span is an in-flight timing measurement feeding a Histogram of
// nanosecond durations.  The zero Span (and any Span started from a nil
// Histogram) is inert: Stop does nothing.
type Span struct {
	h     *Histogram
	start time.Time
}

// Start begins timing a span.  On a nil histogram it returns an inert Span
// without reading the clock.
func (h *Histogram) Start() Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// Stop ends the span, recording the elapsed wall time in nanoseconds.
func (s Span) Stop() {
	if s.h == nil {
		return
	}
	s.h.Observe(float64(time.Since(s.start).Nanoseconds()))
}

// CounterSpan is an in-flight timing measurement whose elapsed nanoseconds
// accumulate into a Counter (cumulative busy time rather than a latency
// distribution).  The zero CounterSpan is inert.
type CounterSpan struct {
	c     *Counter
	start time.Time
}

// StartSpan begins timing an interval that Stop will add to the counter in
// nanoseconds.  On a nil counter it returns an inert span without reading
// the clock.
func (c *Counter) StartSpan() CounterSpan {
	if c == nil {
		return CounterSpan{}
	}
	return CounterSpan{c: c, start: time.Now()}
}

// Stop ends the interval, adding the elapsed nanoseconds to the counter.
func (s CounterSpan) Stop() {
	if s.c == nil {
		return
	}
	s.c.Add(time.Since(s.start).Nanoseconds())
}
