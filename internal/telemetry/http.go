// http.go: the registry's HTTP exposition surface — the scrape endpoint a
// long-running daemon (cmd/imsd) mounts so Prometheus, curl, or the load
// generator can read live metrics.  The two serializations of export.go are
// selected by path or query: text exposition by default, JSON on request.
package telemetry

import (
	"net/http"
	"strings"
)

// Handler returns an http.Handler that serves a point-in-time snapshot of
// the registry: Prometheus text exposition by default, indented JSON when
// the request path ends in ".json" or carries ?format=json.  A
// ?family=prefix[,prefix...] parameter restricts the snapshot to families
// whose names start with any listed prefix — the gateway's per-backend
// history scrapes use it so a sample doesn't ship the full snapshot.  A
// nil registry serves empty (but well-formed) documents, so the endpoint
// can be mounted unconditionally.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s := r.Snapshot()
		if fam := req.URL.Query().Get("family"); fam != "" {
			s = s.FilterPrefix(strings.Split(fam, ",")...)
		}
		asJSON := strings.HasSuffix(req.URL.Path, ".json") || req.URL.Query().Get("format") == "json"
		if asJSON {
			w.Header().Set("Content-Type", "application/json")
			if req.Method == http.MethodHead {
				return
			}
			_ = s.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		_ = s.WritePrometheus(w)
	})
}
