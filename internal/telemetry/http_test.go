package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerServesBothFormats(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("acq_frames_total", "frames served", L("path", "hybrid")).Add(3)
	reg.Gauge("acq_sessions_active", "live sessions").Set(2)

	h := reg.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, `acq_frames_total{path="hybrid"} 3`) {
		t.Fatalf("text exposition missing counter:\n%s", body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text content type %q", ct)
	}

	for _, target := range []string{"/metrics.json", "/metrics?format=json"} {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
		var snap struct {
			Metrics []struct {
				Name string `json:"name"`
			} `json:"metrics"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
			t.Fatalf("%s: invalid JSON: %v", target, err)
		}
		if len(snap.Metrics) != 2 {
			t.Fatalf("%s: got %d metrics", target, len(snap.Metrics))
		}
	}
}

func TestHandlerNilRegistryAndMethods(t *testing.T) {
	var reg *Registry
	h := reg.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("nil registry status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status %d, want 405", rec.Code)
	}
}
