package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerServesBothFormats(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("acq_frames_total", "frames served", L("path", "hybrid")).Add(3)
	reg.Gauge("acq_sessions_active", "live sessions").Set(2)

	h := reg.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, `acq_frames_total{path="hybrid"} 3`) {
		t.Fatalf("text exposition missing counter:\n%s", body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text content type %q", ct)
	}

	for _, target := range []string{"/metrics.json", "/metrics?format=json"} {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
		var snap struct {
			Metrics []struct {
				Name string `json:"name"`
			} `json:"metrics"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
			t.Fatalf("%s: invalid JSON: %v", target, err)
		}
		if len(snap.Metrics) != 2 {
			t.Fatalf("%s: got %d metrics", target, len(snap.Metrics))
		}
	}
}

func TestHandlerNilRegistryAndMethods(t *testing.T) {
	var reg *Registry
	h := reg.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("nil registry status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status %d, want 405", rec.Code)
	}
}

func TestSnapshotFilterPrefix(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("acq_frames_total", "").Add(1)
	reg.Counter("acq_shed_total", "").Add(2)
	reg.Gauge("health_status", "").Set(1)
	reg.Gauge("gw_fleet_up", "").Set(1)
	snap := reg.Snapshot()

	names := func(s Snapshot) []string {
		var out []string
		for _, m := range s.Metrics {
			out = append(out, m.Name)
		}
		return out
	}

	got := snap.FilterPrefix("acq_", "health_")
	if len(got.Metrics) != 3 {
		t.Fatalf("FilterPrefix kept %v, want the 2 acq_ + health_status", names(got))
	}
	for _, m := range got.Metrics {
		if !strings.HasPrefix(m.Name, "acq_") && !strings.HasPrefix(m.Name, "health_") {
			t.Fatalf("FilterPrefix leaked %s", m.Name)
		}
	}
	// Empty and whitespace-only prefixes are ignored; with no usable
	// prefix left the snapshot passes through unchanged (a degenerate
	// ?family=,, is a no-op scrape, not an empty one).
	if got := snap.FilterPrefix("", "  "); len(got.Metrics) != len(snap.Metrics) {
		t.Fatalf("degenerate prefixes kept %v, want all", names(got))
	}
}

func TestHandlerFamilyFilter(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("acq_frames_total", "").Add(3)
	reg.Gauge("health_status", "").Set(1)
	reg.Gauge("tsdb_series", "").Set(9)
	h := reg.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json?family=acq_,health_", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Metrics) != 2 {
		t.Fatalf("filtered scrape has %d metrics, want 2: %s", len(snap.Metrics), rec.Body.String())
	}
	for _, m := range snap.Metrics {
		if m.Name == "tsdb_series" {
			t.Fatal("family filter leaked tsdb_series")
		}
	}

	// The text exposition honours the same parameter.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?family=acq_", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "acq_frames_total") || strings.Contains(body, "health_status") {
		t.Fatalf("text family filter wrong:\n%s", body)
	}
}
