// metrics.go: the scalar metric types — atomic counters and gauges.  Every
// method tolerates a nil receiver so un-instrumented code paths cost one
// predictable branch and nothing else.
package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric (events, bytes,
// cycles).  The zero value is ready to use; methods on a nil *Counter are
// no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increases the counter by n.  Negative n is ignored (counters are
// monotone); a nil receiver is a no-op.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increases the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous floating-point metric (queue depth, occupancy,
// utilization).  The zero value is ready to use; methods on a nil *Gauge
// are no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increases the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark (peak queue depth, peak lag).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
