// Package profiler is the continuous-profiling sampler: a single
// goroutine that captures rotating CPU and heap profiles into a bounded
// on-disk ring, so "what was the daemon doing when the p99 went red an
// hour ago" is answerable after the fact without having had a pprof
// session attached.  Because the serving paths run under runtime/pprof
// labels (acqserver workers carry stage/shard, gateway upstreams carry
// stage/backend), every captured CPU profile is already sliced by the
// fleet dimensions — cmd/profiledump ranks the top functions per label.
//
// Each cycle captures one CPUDuration-long CPU profile
// (cpu-<unixnano>.pprof) and one heap snapshot (heap-<unixnano>.pprof),
// then prunes each kind beyond Retain files — the same janitor stance as
// framelog's segment retention: disk use is bounded by construction, not
// by an operator remembering to clean up.
//
// Families registered here (see docs/OBSERVABILITY.md):
// profile_captures_total, profile_capture_errors_total.
package profiler

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"time"

	"repro/internal/telemetry"
)

// Config tunes a Sampler; zero fields take the defaults noted.
type Config struct {
	// Dir is the profile ring directory (required; created if absent).
	Dir string
	// CPUDuration is the length of each CPU capture (default 10s).
	CPUDuration time.Duration
	// Interval is the period between capture-cycle starts (default 60s;
	// it is clamped to at least CPUDuration so cycles never overlap).
	Interval time.Duration
	// Retain bounds the files kept per profile kind; the oldest beyond it
	// are deleted after each cycle (default 16, ≤0 keeps all).
	Retain int
	// Metrics, when non-nil, receives the profile_* families.
	Metrics *telemetry.Registry
	// Logger, when non-nil, receives capture lifecycle events.
	Logger *slog.Logger
}

// Sampler owns the profile ring.  Build with New, drive with Run.
type Sampler struct {
	cfg      Config
	captures map[string]*telemetry.Counter
	errors   map[string]*telemetry.Counter
	log      *slog.Logger
}

// profileKinds are the capture kinds and their metric label values.
var profileKinds = []string{"cpu", "heap"}

// New validates cfg, creates the ring directory, and builds the sampler.
func New(cfg Config) (*Sampler, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("profiler: no directory configured")
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 10 * time.Second
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 60 * time.Second
	}
	if cfg.Interval < cfg.CPUDuration {
		cfg.Interval = cfg.CPUDuration
	}
	if cfg.Retain == 0 {
		cfg.Retain = 16
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("profiler: %w", err)
	}
	s := &Sampler{
		cfg:      cfg,
		captures: map[string]*telemetry.Counter{},
		errors:   map[string]*telemetry.Counter{},
		log:      cfg.Logger,
	}
	for _, k := range profileKinds {
		l := telemetry.L("kind", k)
		s.captures[k] = cfg.Metrics.Counter("profile_captures_total", "profiles captured into the on-disk ring, per kind", l)
		s.errors[k] = cfg.Metrics.Counter("profile_capture_errors_total", "profile captures that failed, per kind", l)
	}
	return s, nil
}

// Run captures one cycle per interval until ctx is cancelled.  The first
// cycle starts immediately, so a short-lived process still leaves one
// profile behind.
func (s *Sampler) Run(ctx context.Context) {
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		s.cycle(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// cycle captures one CPU profile and one heap snapshot, then prunes.
func (s *Sampler) cycle(ctx context.Context) {
	now := time.Now().UnixNano()
	if err := s.captureCPU(ctx, filepath.Join(s.cfg.Dir, fmt.Sprintf("cpu-%d.pprof", now))); err != nil {
		s.errors["cpu"].Inc()
		if s.log != nil {
			s.log.Warn("cpu profile capture failed", "err", err)
		}
	} else {
		s.captures["cpu"].Inc()
	}
	if err := s.captureHeap(filepath.Join(s.cfg.Dir, fmt.Sprintf("heap-%d.pprof", now))); err != nil {
		s.errors["heap"].Inc()
		if s.log != nil {
			s.log.Warn("heap profile capture failed", "err", err)
		}
	} else {
		s.captures["heap"].Inc()
	}
	for _, kind := range profileKinds {
		s.prune(kind)
	}
}

// captureCPU records one CPU profile of the configured duration (cut
// short by ctx cancellation).  It fails when another CPU profile is
// already running — e.g. an operator hitting /debug/pprof/profile — which
// is counted and retried next cycle rather than fought over.
func (s *Sampler) captureCPU(ctx context.Context, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = f.Close()
		_ = os.Remove(path)
		return err
	}
	select {
	case <-ctx.Done():
	case <-time.After(s.cfg.CPUDuration):
	}
	pprof.StopCPUProfile()
	return f.Close()
}

// captureHeap writes one heap snapshot in the compressed protobuf format.
func (s *Sampler) captureHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		_ = f.Close()
		_ = os.Remove(path)
		return err
	}
	return f.Close()
}

// prune deletes the oldest files of one kind beyond the retention bound.
// Filenames embed a fixed-width unix-nano stamp, so lexical order within
// one kind is age order.
func (s *Sampler) prune(kind string) {
	if s.cfg.Retain <= 0 {
		return
	}
	matches, err := filepath.Glob(filepath.Join(s.cfg.Dir, kind+"-*.pprof"))
	if err != nil || len(matches) <= s.cfg.Retain {
		return
	}
	sort.Strings(matches)
	for _, old := range matches[:len(matches)-s.cfg.Retain] {
		if err := os.Remove(old); err == nil && s.log != nil {
			s.log.Debug("profile pruned", "path", old)
		}
	}
}
