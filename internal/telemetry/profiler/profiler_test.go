package profiler

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestSamplerCycleAndRetention(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	s, err := New(Config{Dir: dir, CPUDuration: 20 * time.Millisecond, Interval: 20 * time.Millisecond, Retain: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		s.cycle(context.Background())
		time.Sleep(time.Millisecond) // distinct unixnano stamps
	}
	for _, kind := range profileKinds {
		matches, _ := filepath.Glob(filepath.Join(dir, kind+"-*.pprof"))
		if len(matches) != 2 {
			t.Fatalf("%s ring holds %d files after 4 cycles with Retain 2: %v", kind, len(matches), matches)
		}
		for _, m := range matches {
			if fi, err := os.Stat(m); err != nil || fi.Size() == 0 {
				t.Fatalf("capture %s empty or unreadable: %v", m, err)
			}
		}
	}
	snap := reg.Snapshot()
	var captured float64
	for _, m := range snap.Metrics {
		if m.Name == "profile_captures_total" && m.Value != nil {
			captured += *m.Value
		}
	}
	if captured != 8 {
		t.Fatalf("profile_captures_total sums to %v, want 8 (4 cycles x 2 kinds)", captured)
	}
}

func TestSamplerRunStopsOnCancel(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir, CPUDuration: 10 * time.Millisecond, Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { s.Run(ctx); close(done) }()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*.pprof"))
	if len(matches) == 0 {
		t.Fatal("no profiles captured before cancel")
	}
}

func TestSamplerConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without Dir must fail")
	}
	s, err := New(Config{Dir: t.TempDir(), CPUDuration: time.Second, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Interval < s.cfg.CPUDuration {
		t.Fatalf("interval %v not clamped to cpu duration %v", s.cfg.Interval, s.cfg.CPUDuration)
	}
}

func TestCaptureCPUConflict(t *testing.T) {
	// A competing CPU profile (an operator on /debug/pprof/profile) must
	// fail the cycle's CPU capture cleanly and leave no empty file behind.
	dir := t.TempDir()
	s, err := New(Config{Dir: dir, CPUDuration: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	blocker, err := os.Create(filepath.Join(dir, "blocker.out"))
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Close()
	if err := pprof.StartCPUProfile(blocker); err != nil {
		t.Skipf("cannot start blocking profile: %v", err)
	}
	defer pprof.StopCPUProfile()
	path := filepath.Join(dir, fmt.Sprintf("cpu-%d.pprof", time.Now().UnixNano()))
	if err := s.captureCPU(context.Background(), path); err == nil {
		t.Fatal("captureCPU succeeded while another CPU profile was running")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("failed capture left %s behind", path)
	}
}
