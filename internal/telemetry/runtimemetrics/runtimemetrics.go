// Package runtimemetrics exports the Go runtime's health signals — heap
// and GC state, goroutine and scheduler pressure — plus process start time
// and build identity into a telemetry.Registry, so every scrape of a
// long-running daemon (cmd/imsd) answers "what is the process itself
// doing" alongside the application families.
//
// The collector is scrape-time: Register hooks the registry's OnSnapshot
// callback, so the runtime is only interrogated when someone reads the
// metrics (runtime.ReadMemStats briefly stops the world — paying that on
// every frame would be absurd; paying it per scrape is noise).  The
// process_* and go_build_info families are resolved once at Register and
// never change.
//
// Families (all gauges; see docs/OBSERVABILITY.md for the catalogue):
//
//	go_goroutines                    live goroutine count
//	go_gomaxprocs                    scheduler width
//	go_heap_alloc_bytes              live heap bytes
//	go_heap_sys_bytes                heap bytes held from the OS
//	go_heap_objects                  live heap object count
//	go_total_alloc_bytes             cumulative bytes ever allocated
//	go_next_gc_bytes                 heap size that triggers the next GC
//	go_gc_cycles_total               completed GC cycles
//	go_gc_pause_ns_total             cumulative stop-the-world pause time
//	go_gc_last_pause_ns              duration of the most recent pause
//	go_gc_cpu_fraction               fraction of CPU spent in GC since start
//	process_start_time_seconds       Unix time the process started
//	process_uptime_seconds           seconds since start
//	go_build_info{...} = 1           go_version / revision / modified labels
//	build_info{...} = 1              version / commit stamped via ldflags
package runtimemetrics

import (
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/telemetry"
)

// start is the collector's notion of process start, captured at init.
var start = time.Now()

// collector bundles the resolved gauge handles refreshed on every scrape.
type collector struct {
	goroutines  *telemetry.Gauge
	gomaxprocs  *telemetry.Gauge
	heapAlloc   *telemetry.Gauge
	heapSys     *telemetry.Gauge
	heapObjects *telemetry.Gauge
	totalAlloc  *telemetry.Gauge
	nextGC      *telemetry.Gauge
	gcCycles    *telemetry.Gauge
	gcPauseNs   *telemetry.Gauge
	gcLastPause *telemetry.Gauge
	gcCPUFrac   *telemetry.Gauge
	uptime      *telemetry.Gauge
}

// Register resolves the runtime, process and build-info families on reg
// and hooks a scrape-time refresh via reg.OnSnapshot.  It is safe (and a
// complete no-op) on a nil registry, and idempotent in effect — calling it
// twice just refreshes the same gauge instances twice per scrape.
func Register(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c := &collector{
		goroutines:  reg.Gauge("go_goroutines", "live goroutines"),
		gomaxprocs:  reg.Gauge("go_gomaxprocs", "scheduler width (GOMAXPROCS)"),
		heapAlloc:   reg.Gauge("go_heap_alloc_bytes", "live heap bytes"),
		heapSys:     reg.Gauge("go_heap_sys_bytes", "heap bytes obtained from the OS"),
		heapObjects: reg.Gauge("go_heap_objects", "live heap objects"),
		totalAlloc:  reg.Gauge("go_total_alloc_bytes", "cumulative bytes allocated since start"),
		nextGC:      reg.Gauge("go_next_gc_bytes", "heap size at which the next GC triggers"),
		gcCycles:    reg.Gauge("go_gc_cycles_total", "completed GC cycles"),
		gcPauseNs:   reg.Gauge("go_gc_pause_ns_total", "cumulative GC stop-the-world pause, nanoseconds"),
		gcLastPause: reg.Gauge("go_gc_last_pause_ns", "most recent GC pause, nanoseconds"),
		gcCPUFrac:   reg.Gauge("go_gc_cpu_fraction", "fraction of available CPU spent in GC since start"),
		uptime:      reg.Gauge("process_uptime_seconds", "seconds since process start"),
	}
	reg.Gauge("process_start_time_seconds", "Unix time the process started").
		Set(float64(start.UnixNano()) / 1e9)
	goVersion, revision, modified := buildIdentity()
	reg.Gauge("go_build_info", "build identity; value is always 1",
		telemetry.L("go_version", goVersion),
		telemetry.L("revision", revision),
		telemetry.L("modified", modified)).Set(1)
	commit := buildinfo.Commit
	if commit == "unknown" && revision != "unknown" {
		commit = revision // toolchain VCS stamping beats no stamping at all
	}
	reg.Gauge("build_info", "release identity stamped at link time; value is always 1",
		telemetry.L("version", buildinfo.Version),
		telemetry.L("commit", commit),
		telemetry.L("go_version", goVersion)).Set(1)
	reg.OnSnapshot(c.refresh)
}

// refresh re-reads the runtime into the gauges; runs once per scrape.
func (c *collector) refresh() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.goroutines.Set(float64(runtime.NumGoroutine()))
	c.gomaxprocs.Set(float64(runtime.GOMAXPROCS(0)))
	c.heapAlloc.Set(float64(ms.HeapAlloc))
	c.heapSys.Set(float64(ms.HeapSys))
	c.heapObjects.Set(float64(ms.HeapObjects))
	c.totalAlloc.Set(float64(ms.TotalAlloc))
	c.nextGC.Set(float64(ms.NextGC))
	c.gcCycles.Set(float64(ms.NumGC))
	c.gcPauseNs.Set(float64(ms.PauseTotalNs))
	if ms.NumGC > 0 {
		c.gcLastPause.Set(float64(ms.PauseNs[(ms.NumGC+255)%256]))
	}
	c.gcCPUFrac.Set(ms.GCCPUFraction)
	c.uptime.Set(time.Since(start).Seconds())
}

// buildIdentity extracts the Go version and VCS revision from the binary's
// embedded build info, degrading to "unknown" when the binary was built
// without VCS stamping (go test, go run).
func buildIdentity() (goVersion, revision, modified string) {
	goVersion = runtime.Version()
	revision, modified = "unknown", "unknown"
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return goVersion, revision, modified
	}
	if info.GoVersion != "" {
		goVersion = info.GoVersion
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			if s.Value != "" {
				revision = s.Value
			}
		case "vcs.modified":
			if s.Value != "" {
				modified = s.Value
			}
		}
	}
	return goVersion, revision, modified
}
