package runtimemetrics

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// runtimeFamilies is the catalogue contract: every scrape of a registered
// registry must carry these families.
var runtimeFamilies = []string{
	"go_goroutines",
	"go_gomaxprocs",
	"go_heap_alloc_bytes",
	"go_heap_sys_bytes",
	"go_heap_objects",
	"go_total_alloc_bytes",
	"go_next_gc_bytes",
	"go_gc_cycles_total",
	"go_gc_pause_ns_total",
	"go_gc_cpu_fraction",
	"process_start_time_seconds",
	"process_uptime_seconds",
	"go_build_info",
}

func TestRegisterExportsRuntimeFamilies(t *testing.T) {
	reg := telemetry.NewRegistry()
	Register(reg)
	s := reg.Snapshot()
	byName := map[string]telemetry.Metric{}
	for _, m := range s.Metrics {
		byName[m.Name] = m
	}
	for _, name := range runtimeFamilies {
		m, ok := byName[name]
		if !ok {
			t.Errorf("family %s missing from snapshot", name)
			continue
		}
		if m.Kind != "gauge" {
			t.Errorf("family %s kind %q, want gauge", name, m.Kind)
		}
	}
	if m := byName["go_goroutines"]; m.Value == nil || *m.Value < 1 {
		t.Errorf("go_goroutines = %v, want >= 1", m.Value)
	}
	if m := byName["go_heap_alloc_bytes"]; m.Value == nil || *m.Value <= 0 {
		t.Errorf("go_heap_alloc_bytes = %v, want > 0", m.Value)
	}
	if m := byName["process_start_time_seconds"]; m.Value == nil || *m.Value <= 0 {
		t.Errorf("process_start_time_seconds = %v, want > 0", m.Value)
	}
	bi := byName["go_build_info"]
	if bi.Value == nil || *bi.Value != 1 {
		t.Errorf("go_build_info value = %v, want 1", bi.Value)
	}
	for _, label := range []string{"go_version", "revision", "modified"} {
		if bi.Labels[label] == "" {
			t.Errorf("go_build_info label %s empty", label)
		}
	}
	if !strings.HasPrefix(bi.Labels["go_version"], "go") && !strings.HasPrefix(bi.Labels["go_version"], "devel") {
		t.Errorf("go_version label %q does not look like a Go version", bi.Labels["go_version"])
	}
}

// TestGoldenRuntimeExposition is the golden test for the runtime families'
// shape on the wire: every family appears with a # TYPE gauge header in
// the Prometheus exposition.
func TestGoldenRuntimeExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	Register(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range runtimeFamilies {
		if !strings.Contains(out, "# TYPE "+name+" gauge") {
			t.Errorf("exposition missing TYPE header for %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, `go_build_info{`) {
		t.Errorf("exposition missing labeled go_build_info:\n%s", out)
	}
}

func TestScrapeRefreshesGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	Register(reg)
	read := func() float64 {
		for _, m := range reg.Snapshot().Metrics {
			if m.Name == "process_uptime_seconds" {
				return *m.Value
			}
		}
		t.Fatal("process_uptime_seconds missing")
		return 0
	}
	first := read()
	second := read()
	if second < first {
		t.Errorf("uptime went backwards: %g then %g", first, second)
	}
	if first <= 0 {
		t.Errorf("uptime = %g, want > 0", first)
	}
}

func TestRegisterNilRegistry(t *testing.T) {
	Register(nil) // must not panic
}
