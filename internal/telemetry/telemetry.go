// Package telemetry is the observability layer of the simulator: an
// allocation-light, stdlib-only metrics core shared by every stage of the
// hybrid pipeline.  It provides atomic counters, gauges, fixed-bucket
// log-scale histograms and span timers behind a Registry of labeled metric
// families, with snapshot-consistent reads, Prometheus-style text
// exposition and JSON export.
//
// Design rules:
//
//   - A nil *Registry (and every handle obtained from one) is a true no-op:
//     un-instrumented callers pay a single nil check per operation and zero
//     allocations, so hot paths can be wired unconditionally.
//   - Handles (*Counter, *Gauge, *Histogram) are resolved once, outside the
//     hot loop; the per-event operations (Add, Set, Observe, Span.Stop) are
//     lock-free atomics.
//   - Metric names follow <subsystem>_<quantity>_<unit> with the subsystem
//     prefix naming the package that emits them (pipeline_, hybrid_, fpga_,
//     xd1_, core_); see docs/OBSERVABILITY.md for the full catalogue.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one key=value dimension of a metric family instance.
type Label struct {
	// Key is the label name (e.g. "stage").
	Key string
	// Value is the label value (e.g. "deconvolve").
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates the metric types held by a Registry.
type Kind int

const (
	// KindCounter is a monotonically increasing integer.
	KindCounter Kind = iota
	// KindGauge is an instantaneous floating-point value.
	KindGauge
	// KindHistogram is a distribution over fixed log-scale buckets.
	KindHistogram
)

// String returns the Prometheus-style kind name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// family is one named metric family: a kind, a help string, and one metric
// instance per distinct label set.
type family struct {
	name string
	help string
	kind Kind

	// instances maps the canonical label signature to the metric.
	instances map[string]*instance
}

// instance is one (family, label-set) metric.
type instance struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds labeled metric families.  The zero value is not usable;
// construct with NewRegistry.  A nil *Registry is valid everywhere and
// turns every lookup and every operation on the returned handles into a
// no-op.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	cmu        sync.Mutex
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// OnSnapshot registers a collector callback that runs at the start of
// every Snapshot/SnapshotAt, before any family is read — the hook that
// lets scrape-time sources (runtime and build-info gauges, see
// internal/telemetry/runtimemetrics) refresh themselves only when someone
// is looking.  Callbacks may resolve and set metrics on the registry but
// must not call Snapshot themselves.  A nil registry ignores the call.
func (r *Registry) OnSnapshot(f func()) {
	if r == nil || f == nil {
		return
	}
	r.cmu.Lock()
	defer r.cmu.Unlock()
	r.collectors = append(r.collectors, f)
}

// collect runs the OnSnapshot callbacks (outside the family lock, so they
// can update metrics freely).
func (r *Registry) collect() {
	r.cmu.Lock()
	fs := r.collectors
	r.cmu.Unlock()
	for _, f := range fs {
		f()
	}
}

// labelKey builds the canonical signature of a label set (sorted by key).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// lookup finds or creates the instance for (name, labels), enforcing kind
// consistency.  Registering the same name with a different kind is a
// programming error and panics.
func (r *Registry) lookup(name, help string, kind Kind, labels []Label) *instance {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, instances: map[string]*instance{}}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	if f.help == "" {
		f.help = help
	}
	key := labelKey(labels)
	in, ok := f.instances[key]
	if !ok {
		ls := append([]Label(nil), labels...)
		sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
		in = &instance{labels: ls}
		switch kind {
		case KindCounter:
			in.c = &Counter{}
		case KindGauge:
			in.g = &Gauge{}
		case KindHistogram:
			in.h = &Histogram{}
		}
		f.instances[key] = in
	}
	return in
}

// Counter finds or creates the counter instance of the named family with
// the given labels.  The help string is recorded on first registration.
// On a nil registry it returns nil, whose methods are no-ops.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindCounter, labels).c
}

// Gauge finds or creates the gauge instance of the named family with the
// given labels.  On a nil registry it returns nil, whose methods are
// no-ops.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindGauge, labels).g
}

// Histogram finds or creates the histogram instance of the named family
// with the given labels.  On a nil registry it returns nil, whose methods
// are no-ops.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindHistogram, labels).h
}
