package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterSemantics(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Inc()
	c.Add(-3) // negative ignored: counters are monotone
	if got := c.Value(); got != 6 {
		t.Errorf("counter = %d, want 6", got)
	}
	var nilC *Counter
	nilC.Add(1)
	nilC.Inc()
	if got := nilC.Value(); got != 0 {
		t.Errorf("nil counter = %d, want 0", got)
	}
	nilC.StartSpan().Stop() // must not panic or read the clock's result
}

func TestGaugeSemantics(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
	g.SetMax(1.0) // below current: no-op
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge after SetMax(1.0) = %g, want 1.5", got)
	}
	g.SetMax(7)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge after SetMax(7) = %g, want 7", got)
	}
	var nilG *Gauge
	nilG.Set(3)
	nilG.Add(1)
	nilG.SetMax(9)
	if got := nilG.Value(); got != 0 {
		t.Errorf("nil gauge = %g, want 0", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{-5, 0}, {0, 0}, {0.5, 0}, {1, 0}, {math.NaN(), 0},
		{1.5, 1}, {2, 1}, {2.5, 2}, {4, 2}, {5, 3},
		{1024, 10}, {1025, 11},
		{math.Ldexp(1, 50), NumBuckets - 1}, {math.Inf(1), NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	if got := BucketUpperBound(3); got != 8 {
		t.Errorf("BucketUpperBound(3) = %g, want 8", got)
	}
	if !math.IsInf(BucketUpperBound(NumBuckets-1), 1) {
		t.Error("last bucket bound should be +Inf")
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 3, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
	if got := h.Sum(); got != 1004 {
		t.Errorf("sum = %g, want 1004", got)
	}
	counts := h.Counts()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != h.Count() {
		t.Errorf("bucket total %d != count %d", total, h.Count())
	}
	// p50 falls in the le=4 bucket: geometric midpoint of (2,4].
	if got, want := h.Quantile(0.5), math.Sqrt(2*4.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("p50 = %g, want %g", got, want)
	}
	var nilH *Histogram
	nilH.Observe(1)
	if nilH.Count() != 0 || nilH.Sum() != 0 || nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram should read as empty")
	}
	nilH.Start().Stop()
}

func TestQuantileOfCounts(t *testing.T) {
	var counts [NumBuckets]int64
	if got := QuantileOfCounts(counts, 0.5); got != 0 {
		t.Errorf("empty counts quantile = %g, want 0", got)
	}
	counts[0] = 10
	if got := QuantileOfCounts(counts, 0.99); got != 1 {
		t.Errorf("all-in-bucket-0 quantile = %g, want 1", got)
	}
	counts[NumBuckets-1] = 1000
	want := math.Ldexp(1, NumBuckets-2)
	if got := QuantileOfCounts(counts, 0.99); got != want {
		t.Errorf("overflow-bucket quantile = %g, want %g", got, want)
	}
}

func TestRegistryNil(t *testing.T) {
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "") != nil {
		t.Error("nil registry must hand out nil metric handles")
	}
	if n := len(r.Snapshot().Metrics); n != 0 {
		t.Errorf("nil registry snapshot has %d metrics, want 0", n)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("nil registry exposition = %q, want empty", sb.String())
	}
}

func TestRegistryLabels(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("events_total", "events", L("stage", "fht"), L("result", "ok"))
	// Same label set in a different order must resolve to the same instance.
	b := r.Counter("events_total", "events", L("result", "ok"), L("stage", "fht"))
	if a != b {
		t.Error("label order changed the instance identity")
	}
	c := r.Counter("events_total", "events", L("stage", "dma"))
	if a == c {
		t.Error("distinct label sets must be distinct instances")
	}
	a.Add(2)
	c.Add(5)
	s := r.Snapshot()
	if len(s.Metrics) != 2 {
		t.Fatalf("snapshot has %d metrics, want 2", len(s.Metrics))
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("depth", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("depth", "")
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	g := r.Gauge("peak", "")
	h := r.Histogram("lat_ns", "")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetMax(float64(w*per + i))
				h.Observe(float64(i%100 + 1))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != float64(workers*per-1) {
		t.Errorf("gauge peak = %g, want %d", got, workers*per-1)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestSnapshotConsistency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "")
	c := r.Counter("n_total", "")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				h.Observe(float64(i%1000 + 1))
				c.Inc()
			}
		}
	}()
	var lastCount int64 = -1
	for i := 0; i < 200; i++ {
		s := r.Snapshot()
		for _, m := range s.Metrics {
			switch m.Kind {
			case "histogram":
				var total int64
				for _, b := range m.Buckets {
					total += b.Count
				}
				if total != m.Count {
					t.Fatalf("snapshot histogram count %d != bucket total %d", m.Count, total)
				}
			case "counter":
				if *m.Value < float64(lastCount) {
					t.Fatalf("counter went backwards: %g < %d", *m.Value, lastCount)
				}
				lastCount = int64(*m.Value)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// goldenRegistry builds the small fixed registry behind both exposition
// golden tests.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Gauge("app_depth", "queue depth", L("stage", "fht")).Set(2.5)
	r.Counter("app_events_total", "events").Add(3)
	h := r.Histogram("app_lat_ns", "latency")
	for _, v := range []float64{1, 3, 1000} {
		h.Observe(v)
	}
	return r
}

func TestGoldenPrometheus(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_depth queue depth
# TYPE app_depth gauge
app_depth{stage="fht"} 2.5
# HELP app_events_total events
# TYPE app_events_total counter
app_events_total 3
# HELP app_lat_ns latency
# TYPE app_lat_ns histogram
app_lat_ns_bucket{le="1"} 1
app_lat_ns_bucket{le="4"} 2
app_lat_ns_bucket{le="1024"} 3
app_lat_ns_bucket{le="+Inf"} 3
app_lat_ns_sum 1004
app_lat_ns_count 3
app_lat_ns_p50 2.8284271247461903
app_lat_ns_p95 724.0773439350247
app_lat_ns_p99 724.0773439350247
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestGoldenJSON(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	want := `{
  "metrics": [
    {
      "name": "app_depth",
      "kind": "gauge",
      "help": "queue depth",
      "labels": {
        "stage": "fht"
      },
      "value": 2.5
    },
    {
      "name": "app_events_total",
      "kind": "counter",
      "help": "events",
      "value": 3
    },
    {
      "name": "app_lat_ns",
      "kind": "histogram",
      "help": "latency",
      "count": 3,
      "sum": 1004,
      "p50": 2.8284271247461903,
      "p95": 724.0773439350247,
      "p99": 724.0773439350247,
      "buckets": [
        {
          "le": "1",
          "count": 1
        },
        {
          "le": "4",
          "count": 1
        },
        {
          "le": "1024",
          "count": 1
        }
      ]
    }
  ]
}
`
	if sb.String() != want {
		t.Errorf("JSON mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// BenchmarkTelemetryOverhead proves the nil-registry wiring contract: the
// un-instrumented path must cost a nil check and nothing else (<5 ns/op,
// zero allocations).
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		var r *Registry
		c := r.Counter("x_total", "")
		g := r.Gauge("x", "")
		h := r.Histogram("x_ns", "")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
			g.SetMax(float64(i))
			h.Observe(float64(i))
			h.Start().Stop()
		}
	})
	b.Run("live", func(b *testing.B) {
		r := NewRegistry()
		c := r.Counter("x_total", "")
		g := r.Gauge("x", "")
		h := r.Histogram("x_ns", "")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
			g.SetMax(float64(i))
			h.Observe(float64(i))
		}
	})
}
