// context.go: carrying the active span through context.Context — the same
// plumbing the serving stack already uses for deadlines, so a worker's
// span reaches the hybrid offload and the CPU pipeline without new
// parameters on every call.
package trace

import "context"

// ctxKey is the private context key for the active span.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying s as the active span.  The zero
// Span is not stored: the context is returned unchanged, so the disabled
// path adds no context allocation.
func ContextWithSpan(ctx context.Context, s Span) context.Context {
	if s.t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the active span carried by ctx, or the inert
// zero Span when there is none — callers start children from the result
// unconditionally.
func SpanFromContext(ctx context.Context) Span {
	s, _ := ctx.Value(ctxKey{}).(Span)
	return s
}
