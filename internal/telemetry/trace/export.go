// export.go: the two ways retained traces leave the process — the
// Chrome/Perfetto trace-event JSON file written by the -trace flag of
// imsd/imssim/imsload, and the live /debug/traces HTTP endpoint the
// daemon mounts next to /metrics.
package trace

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
)

// perfettoEvent is one Chrome trace-event: a complete ("X") slice or a
// metadata ("M") record naming a track.
type perfettoEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"` // microseconds
	Dur  float64                `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// perfettoFile is the top-level trace-event JSON object.
type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// WritePerfetto serializes traces as Chrome trace-event JSON, loadable by
// ui.perfetto.dev or chrome://tracing.  Each trace becomes one track
// (tid) named after its trace ID; spans become complete ("X") events with
// their attributes under args.  Timestamps are rebased to the earliest
// trace start so the viewer opens at t≈0.
func WritePerfetto(w io.Writer, traces []TraceSnapshot) error {
	sorted := append([]TraceSnapshot(nil), traces...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start.Before(sorted[j].Start) })
	var out perfettoFile
	out.DisplayTimeUnit = "ms"
	out.TraceEvents = []perfettoEvent{}
	var epoch int64
	if len(sorted) > 0 {
		epoch = sorted[0].Start.UnixNano()
	}
	for tid, tr := range sorted {
		out.TraceEvents = append(out.TraceEvents, perfettoEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]interface{}{"name": tr.Name + " " + hex16(tr.ID)},
		})
		base := tr.Start.UnixNano() - epoch
		for _, sp := range tr.Spans {
			args := map[string]interface{}{"trace_id": hex16(tr.ID), "parent": sp.Parent}
			for k, v := range sp.Attrs {
				args[k] = v
			}
			out.TraceEvents = append(out.TraceEvents, perfettoEvent{
				Name: sp.Name,
				Ph:   "X",
				Ts:   float64(base+sp.StartOffsetNs) / 1e3,
				Dur:  float64(sp.DurationNs) / 1e3,
				Pid:  1,
				Tid:  tid,
				Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WritePerfetto exports every retained trace (slow ring then uniform
// sample) as Chrome trace-event JSON.  A nil tracer writes an empty,
// still-loadable document.
func (t *Tracer) WritePerfetto(w io.Writer) error {
	slow, sampled := t.Snapshot()
	return WritePerfetto(w, append(slow, sampled...))
}

// hex16 renders a trace ID as 16 lowercase hex digits.
func hex16(id uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// debugDoc is the /debug/traces response body.
type debugDoc struct {
	Stats   Stats           `json:"stats"`
	Slow    []TraceSnapshot `json:"slow"`
	Sampled []TraceSnapshot `json:"sampled"`
}

// Handler returns the /debug/traces endpoint: a JSON document with the
// tracer's counters, the last-N slowest traces and the uniform sample.
// A nil tracer serves an empty (but well-formed) document, so the route
// can be mounted unconditionally.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		doc := debugDoc{Slow: []TraceSnapshot{}, Sampled: []TraceSnapshot{}}
		if t != nil {
			doc.Stats = t.Stats()
			slow, sampled := t.Snapshot()
			if slow != nil {
				doc.Slow = slow
			}
			if sampled != nil {
				doc.Sampled = sampled
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if req.Method == http.MethodHead {
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}
