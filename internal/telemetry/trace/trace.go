// Package trace is the span-tree tracer of the observability layer: the
// per-frame complement to the metric Registry of internal/telemetry.
// Where counters and histograms aggregate (how many frames, what p99), a
// trace attributes ONE frame's latency to the stages it crossed — socket
// read, shard-queue wait, worker dispatch, the modeled FPGA
// capture/accumulate/FHT stages, the XD1 DMA cost model, CPU decode,
// response write — as a tree of timed spans sharing a trace ID.
//
// Design rules mirror the metrics core:
//
//   - A nil *Tracer (and the zero Span obtained from one) is a true no-op:
//     un-instrumented callers pay a nil check per span site and zero
//     allocations, so the serving hot path can be wired unconditionally
//     (BenchmarkTraceOverhead holds the disabled path under 10 ns/op).
//   - Recording is cheap and unconditional once a tracer is installed;
//     RETENTION is tail-sampled at trace completion: every trace whose
//     root span meets Config.SlowThreshold is kept (the slow-frame
//     watchdog), and 1-in-SampleEvery of the rest lands in a uniform
//     sample.  Both populations live in fixed rings, so memory is bounded
//     under any load.
//   - Spans may start and end on different goroutines (a queue-wait span
//     ends on the worker that dequeues the frame); the trace's span table
//     is guarded by one mutex, touched only at span boundaries.
//
// Completed traces are served live over HTTP (Tracer.Handler, mounted at
// /debug/traces by cmd/imsd) and exported as Chrome/Perfetto trace-event
// JSON (WritePerfetto, behind the -trace flag of imsd, imssim and
// imsload).  See docs/OBSERVABILITY.md for the span taxonomy.
package trace

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRingSize is the retained-trace cap of each ring (slow and
// sampled) when Config.RingSize is unset.
const DefaultRingSize = 64

// DefaultMaxSpans bounds the spans recorded per trace when
// Config.MaxSpans is unset; children beyond the cap are counted as
// dropped rather than recorded.
const DefaultMaxSpans = 64

// DefaultSampleEvery is the uniform-sample rate (1 in N fast traces) the
// daemon flags default to; Config itself treats 0 as "no sample ring".
const DefaultSampleEvery = 16

// Config tunes a Tracer.  The zero value is usable: it keeps every
// completed trace (SlowThreshold 0) in rings of DefaultRingSize.
type Config struct {
	// SlowThreshold is the tail-sampling watchdog: every trace whose root
	// span lasts at least this long is kept in the slow ring.  Zero (or
	// negative) keeps every trace — the smoke-test and debugging setting.
	SlowThreshold time.Duration
	// SampleEvery keeps 1 in N of the traces that did NOT meet
	// SlowThreshold, as a uniform sample of normal behaviour.  Zero
	// disables the sample ring.
	SampleEvery int
	// RingSize caps each retention ring; 0 means DefaultRingSize.
	RingSize int
	// MaxSpans caps the spans recorded per trace; 0 means
	// DefaultMaxSpans.
	MaxSpans int
}

// Tracer records span trees and retains a bounded, tail-sampled subset.
// A nil *Tracer is valid everywhere: StartTrace returns the inert zero
// Span and every exporter serves empty documents.
type Tracer struct {
	cfg    Config
	idBase uint64
	idSeq  atomic.Uint64

	started    atomic.Uint64
	finished   atomic.Uint64
	keptSlow   atomic.Uint64
	keptSample atomic.Uint64
	sampleTick atomic.Uint64

	mu      sync.Mutex
	slow    ring
	sampled ring
}

// New constructs a Tracer with the given retention policy.
func New(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = DefaultMaxSpans
	}
	t := &Tracer{cfg: cfg, idBase: rand.Uint64() | 1}
	t.slow.buf = make([]TraceSnapshot, cfg.RingSize)
	t.sampled.buf = make([]TraceSnapshot, cfg.RingSize)
	return t
}

// Stats are the tracer's lifetime counters.
type Stats struct {
	// Started counts StartTrace calls.
	Started uint64 `json:"started"`
	// Finished counts traces whose root span ended.
	Finished uint64 `json:"finished"`
	// KeptSlow counts traces retained by the slow-frame watchdog.
	KeptSlow uint64 `json:"kept_slow"`
	// KeptSampled counts traces retained by the uniform sample.
	KeptSampled uint64 `json:"kept_sampled"`
}

// Stats returns the lifetime counters (zero on a nil tracer).
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{
		Started:     t.started.Load(),
		Finished:    t.finished.Load(),
		KeptSlow:    t.keptSlow.Load(),
		KeptSampled: t.keptSample.Load(),
	}
}

// attr is one recorded key/value; Str is used when IsStr, Int otherwise.
type attr struct {
	Key   string
	Str   string
	Int   int64
	IsStr bool
}

// spanData is one recorded span inside a trace.
type spanData struct {
	name   string
	parent int32
	start  time.Time
	dur    time.Duration
	ended  bool
	attrs  []attr
}

// traceData is one trace under construction.
type traceData struct {
	tracer *Tracer
	id     uint64
	start  time.Time

	mu       sync.Mutex
	spans    []spanData
	dropped  int
	finished bool
}

// Span is a handle on one span of one trace.  The zero Span is inert:
// every method is a no-op, Active reports false and TraceID is 0, so
// callers thread spans unconditionally.
type Span struct {
	t   *traceData
	idx int32
}

// StartTrace begins a new trace whose root span carries name.  A nonzero
// id adopts a caller-chosen trace ID (e.g. one carried on the IMSP/1
// wire); id 0 generates a fresh one.  On a nil tracer it returns the
// inert zero Span without reading the clock.
func (t *Tracer) StartTrace(name string, id uint64) Span {
	if t == nil {
		return Span{}
	}
	t.started.Add(1)
	if id == 0 {
		id = t.idBase + t.idSeq.Add(1)
	}
	td := &traceData{tracer: t, id: id, start: time.Now()}
	td.spans = make([]spanData, 1, 8)
	td.spans[0] = spanData{name: name, parent: -1, start: td.start}
	return Span{t: td, idx: 0}
}

// Active reports whether the span records anything (false for the zero
// Span, true for every span of a live trace).
func (s Span) Active() bool { return s.t != nil }

// TraceID returns the trace ID the span belongs to (0 for the zero Span).
func (s Span) TraceID() uint64 {
	if s.t == nil {
		return 0
	}
	return s.t.id
}

// Child begins a child span starting now.
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return s.childAt(name, time.Now())
}

// ChildAt begins a child span with an explicit start time — the hook used
// by modeled stages (FPGA capture, XD1 DMA) to lay synthetic durations
// end to end along a wall-clock cursor.
func (s Span) ChildAt(name string, start time.Time) Span {
	if s.t == nil {
		return Span{}
	}
	return s.childAt(name, start)
}

func (s Span) childAt(name string, start time.Time) Span {
	td := s.t
	td.mu.Lock()
	defer td.mu.Unlock()
	max := td.tracer.cfg.MaxSpans
	if len(td.spans) >= max {
		td.dropped++
		return Span{}
	}
	td.spans = append(td.spans, spanData{name: name, parent: s.idx, start: start})
	return Span{t: td, idx: int32(len(td.spans) - 1)}
}

// SetInt attaches an integer attribute (shard, worker, frame bytes, PRS
// order) to the span.
func (s Span) SetInt(key string, v int64) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	s.t.spans[s.idx].attrs = append(s.t.spans[s.idx].attrs, attr{Key: key, Int: v})
	s.t.mu.Unlock()
}

// SetStr attaches a string attribute (path, stage, status code) to the
// span.
func (s Span) SetStr(key, v string) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	s.t.spans[s.idx].attrs = append(s.t.spans[s.idx].attrs, attr{Key: key, Str: v, IsStr: true})
	s.t.mu.Unlock()
}

// End closes the span at the current wall clock.  Ending the root span
// completes the trace and runs the tail-sampling retention decision;
// ending a span twice is a no-op.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.endWith(time.Since(s.t.spans[s.idx].start))
}

// EndAfter closes the span with an explicit duration — the modeled-stage
// counterpart of End, for spans whose length comes from a cost model
// rather than the wall clock.
func (s Span) EndAfter(d time.Duration) {
	if s.t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s.endWith(d)
}

func (s Span) endWith(d time.Duration) {
	td := s.t
	td.mu.Lock()
	sp := &td.spans[s.idx]
	if sp.ended {
		td.mu.Unlock()
		return
	}
	sp.ended = true
	sp.dur = d
	root := s.idx == 0 && !td.finished
	if root {
		td.finished = true
	}
	td.mu.Unlock()
	if root {
		td.tracer.finishTrace(td, d)
	}
}

// finishTrace applies the retention policy to a completed trace.
func (t *Tracer) finishTrace(td *traceData, rootDur time.Duration) {
	t.finished.Add(1)
	slow := t.cfg.SlowThreshold <= 0 || rootDur >= t.cfg.SlowThreshold
	if !slow {
		if t.cfg.SampleEvery <= 0 || t.sampleTick.Add(1)%uint64(t.cfg.SampleEvery) != 0 {
			return
		}
	}
	snap := td.snapshot()
	t.mu.Lock()
	if slow {
		t.slow.add(snap)
	} else {
		t.sampled.add(snap)
	}
	t.mu.Unlock()
	if slow {
		t.keptSlow.Add(1)
	} else {
		t.keptSample.Add(1)
	}
}

// SpanSnapshot is one span of a retained trace.
type SpanSnapshot struct {
	// Name is the span name (see the taxonomy in docs/OBSERVABILITY.md).
	Name string `json:"name"`
	// Parent is the index of the parent span in the trace's span list
	// (-1 for the root).
	Parent int `json:"parent"`
	// StartOffsetNs is the span start relative to the trace start.
	StartOffsetNs int64 `json:"start_offset_ns"`
	// DurationNs is the span length (wall clock or modeled).
	DurationNs int64 `json:"duration_ns"`
	// Attrs are the span's attributes (int64 or string values).
	Attrs map[string]interface{} `json:"attrs,omitempty"`
}

// TraceSnapshot is one retained trace: an immutable copy taken at
// completion.
type TraceSnapshot struct {
	// ID is the trace ID (client-chosen or generated).
	ID uint64 `json:"id"`
	// Name is the root span's name.
	Name string `json:"name"`
	// Start is the trace's wall-clock start.
	Start time.Time `json:"start"`
	// DurationNs is the root span's length.
	DurationNs int64 `json:"duration_ns"`
	// DroppedSpans counts children discarded past Config.MaxSpans.
	DroppedSpans int `json:"dropped_spans,omitempty"`
	// Spans lists every recorded span, root first.
	Spans []SpanSnapshot `json:"spans"`
}

// snapshot copies the trace into its immutable exported form.
func (td *traceData) snapshot() TraceSnapshot {
	td.mu.Lock()
	defer td.mu.Unlock()
	out := TraceSnapshot{
		ID:           td.id,
		Name:         td.spans[0].name,
		Start:        td.start,
		DurationNs:   td.spans[0].dur.Nanoseconds(),
		DroppedSpans: td.dropped,
		Spans:        make([]SpanSnapshot, len(td.spans)),
	}
	for i, sp := range td.spans {
		ss := SpanSnapshot{
			Name:          sp.name,
			Parent:        int(sp.parent),
			StartOffsetNs: sp.start.Sub(td.start).Nanoseconds(),
			DurationNs:    sp.dur.Nanoseconds(),
		}
		if len(sp.attrs) > 0 {
			ss.Attrs = make(map[string]interface{}, len(sp.attrs))
			for _, a := range sp.attrs {
				if a.IsStr {
					ss.Attrs[a.Key] = a.Str
				} else {
					ss.Attrs[a.Key] = a.Int
				}
			}
		}
		out.Spans[i] = ss
	}
	return out
}

// Snapshot returns the retained traces: the slow ring then the uniform
// sample, each oldest first.  A nil tracer returns nil.
func (t *Tracer) Snapshot() (slow, sampled []TraceSnapshot) {
	if t == nil {
		return nil, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.slow.list(), t.sampled.list()
}

// ring is a fixed-capacity overwrite-oldest buffer of trace snapshots.
type ring struct {
	buf []TraceSnapshot
	n   int // total adds
}

func (r *ring) add(s TraceSnapshot) {
	r.buf[r.n%len(r.buf)] = s
	r.n++
}

func (r *ring) list() []TraceSnapshot {
	size := r.n
	if size > len(r.buf) {
		size = len(r.buf)
	}
	out := make([]TraceSnapshot, 0, size)
	start := r.n - size
	for i := start; i < r.n; i++ {
		out = append(out, r.buf[i%len(r.buf)])
	}
	return out
}
