package trace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeShape(t *testing.T) {
	tr := New(Config{}) // keep everything
	root := tr.StartTrace("frame", 42)
	if !root.Active() || root.TraceID() != 42 {
		t.Fatalf("root not active or wrong id %d", root.TraceID())
	}
	root.SetInt("frame_bytes", 1024)
	root.SetStr("path", "hybrid")
	read := root.Child("socket_read")
	read.End()
	q := root.Child("queue_wait")
	q.End()
	w := root.Child("worker")
	fht := w.ChildAt("fpga_fht", time.Now())
	fht.EndAfter(3 * time.Millisecond)
	w.End()
	root.End()

	slow, sampled := tr.Snapshot()
	if len(slow) != 1 || len(sampled) != 0 {
		t.Fatalf("kept %d slow, %d sampled; want 1, 0", len(slow), len(sampled))
	}
	snap := slow[0]
	if snap.ID != 42 || snap.Name != "frame" || len(snap.Spans) != 5 {
		t.Fatalf("snapshot %+v", snap)
	}
	byName := map[string]SpanSnapshot{}
	for _, sp := range snap.Spans {
		byName[sp.Name] = sp
	}
	if byName["socket_read"].Parent != 0 || byName["worker"].Parent != 0 {
		t.Error("direct children must have parent index 0")
	}
	if got := byName["fpga_fht"]; got.Parent != 4-1 || got.DurationNs != 3e6 {
		t.Errorf("fpga_fht parent %d dur %d", got.Parent, got.DurationNs)
	}
	if snap.Spans[0].Attrs["frame_bytes"] != int64(1024) || snap.Spans[0].Attrs["path"] != "hybrid" {
		t.Errorf("root attrs %+v", snap.Spans[0].Attrs)
	}
	st := tr.Stats()
	if st.Started != 1 || st.Finished != 1 || st.KeptSlow != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestTailSampling(t *testing.T) {
	tr := New(Config{SlowThreshold: time.Hour, SampleEvery: 4, RingSize: 8})
	for i := 0; i < 16; i++ {
		root := tr.StartTrace("frame", 0)
		root.End() // far under threshold
	}
	slow, sampled := tr.Snapshot()
	if len(slow) != 0 {
		t.Errorf("%d fast traces in slow ring", len(slow))
	}
	if len(sampled) != 4 {
		t.Errorf("sampled %d of 16 with SampleEvery=4, want 4", len(sampled))
	}
	// A trace with a modeled slow root must land in the slow ring.
	root := tr.StartTrace("frame", 0)
	root.EndAfter(2 * time.Hour)
	slow, _ = tr.Snapshot()
	if len(slow) != 1 {
		t.Errorf("slow trace not kept: %d", len(slow))
	}
}

func TestRingOverwrite(t *testing.T) {
	tr := New(Config{RingSize: 4})
	for i := 1; i <= 10; i++ {
		tr.StartTrace("t", uint64(i)).End()
	}
	slow, _ := tr.Snapshot()
	if len(slow) != 4 {
		t.Fatalf("ring holds %d, want 4", len(slow))
	}
	for i, want := range []uint64{7, 8, 9, 10} {
		if slow[i].ID != want {
			t.Errorf("ring[%d] = trace %d, want %d (oldest-first)", i, slow[i].ID, want)
		}
	}
}

func TestMaxSpansDropped(t *testing.T) {
	tr := New(Config{MaxSpans: 4})
	root := tr.StartTrace("frame", 0)
	for i := 0; i < 10; i++ {
		c := root.Child("extra")
		c.End() // zero Span after the cap: must not panic
	}
	root.End()
	slow, _ := tr.Snapshot()
	if len(slow) != 1 || len(slow[0].Spans) != 4 || slow[0].DroppedSpans != 7 {
		t.Fatalf("spans %d dropped %d", len(slow[0].Spans), slow[0].DroppedSpans)
	}
}

func TestContextPlumbing(t *testing.T) {
	if s := SpanFromContext(context.Background()); s.Active() {
		t.Error("empty context yielded an active span")
	}
	ctx := ContextWithSpan(context.Background(), Span{})
	if ctx != context.Background() {
		t.Error("zero span must not allocate a context")
	}
	tr := New(Config{})
	root := tr.StartTrace("frame", 7)
	ctx = ContextWithSpan(context.Background(), root)
	got := SpanFromContext(ctx)
	if !got.Active() || got.TraceID() != 7 {
		t.Errorf("span did not round-trip the context: %+v", got)
	}
}

func TestCrossGoroutineSpans(t *testing.T) {
	tr := New(Config{})
	const traces = 32
	var wg sync.WaitGroup
	for i := 0; i < traces; i++ {
		root := tr.StartTrace("frame", 0)
		q := root.Child("queue_wait")
		wg.Add(1)
		go func() { // the worker side: end the queue span, add children, finish
			defer wg.Done()
			q.End()
			w := root.Child("worker")
			w.SetInt("shard", 1)
			w.End()
			root.End()
		}()
	}
	wg.Wait()
	if st := tr.Stats(); st.Finished != traces {
		t.Errorf("finished %d of %d", st.Finished, traces)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	s := tr.StartTrace("frame", 9)
	if s.Active() || s.TraceID() != 0 {
		t.Error("nil tracer returned an active span")
	}
	s.SetInt("k", 1)
	s.SetStr("k", "v")
	c := s.Child("x")
	c.EndAfter(time.Second)
	s.End()
	if slow, sampled := tr.Snapshot(); slow != nil || sampled != nil {
		t.Error("nil tracer retained traces")
	}
	var sb strings.Builder
	if err := tr.WritePerfetto(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "traceEvents") {
		t.Errorf("nil tracer Perfetto doc: %q", sb.String())
	}
}

func TestPerfettoExport(t *testing.T) {
	tr := New(Config{})
	root := tr.StartTrace("frame", 0xbeef)
	root.Child("socket_read").End()
	dma := root.ChildAt("xd1_dma_in", time.Now())
	dma.SetInt("bytes", 4096)
	dma.EndAfter(time.Millisecond)
	root.End()

	var sb strings.Builder
	if err := tr.WritePerfetto(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Dur  float64                `json:"dur"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		names[e.Name] = true
		if e.Name == "xd1_dma_in" {
			if e.Ph != "X" || e.Dur != 1000 {
				t.Errorf("dma event %+v", e)
			}
			if e.Args["trace_id"] != "000000000000beef" || e.Args["bytes"] != float64(4096) {
				t.Errorf("dma args %+v", e.Args)
			}
		}
	}
	for _, want := range []string{"thread_name", "frame", "socket_read", "xd1_dma_in"} {
		if !names[want] {
			t.Errorf("missing event %q", want)
		}
	}
}

func TestHandler(t *testing.T) {
	tr := New(Config{})
	tr.StartTrace("frame", 5).End()
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var doc struct {
		Stats struct {
			Finished uint64 `json:"finished"`
		} `json:"stats"`
		Slow []TraceSnapshot `json:"slow"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if doc.Stats.Finished != 1 || len(doc.Slow) != 1 || doc.Slow[0].ID != 5 {
		t.Errorf("doc %+v", doc)
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/debug/traces", nil))
	if rec.Code != 405 {
		t.Errorf("POST status %d", rec.Code)
	}

	var nilTracer *Tracer
	rec = httptest.NewRecorder()
	nilTracer.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"slow"`) {
		t.Errorf("nil handler: %d %q", rec.Code, rec.Body.String())
	}
}

// BenchmarkTraceOverhead proves the disabled-path contract: with no
// tracer installed, every span site — StartTrace, context lookup, Child,
// attrs, End — must cost nil checks only (<10 ns/op, zero allocations).
func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		var tr *Tracer
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			root := tr.StartTrace("frame", 0)
			s := SpanFromContext(ctx)
			c := s.Child("worker")
			c.SetInt("shard", 1)
			c.End()
			root.End()
		}
	})
	b.Run("enabled", func(b *testing.B) {
		tr := New(Config{SlowThreshold: time.Hour, SampleEvery: 1 << 20})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			root := tr.StartTrace("frame", 0)
			c := root.Child("worker")
			c.SetInt("shard", 1)
			c.End()
			root.End()
		}
	})
}
