// anomaly.go: a robust-statistics anomaly detector over sampled series.
// Each Target tracks an EWMA of its value (the level) and an EWMA of the
// absolute deviation from that level (a streaming stand-in for the MAD);
// the anomaly score of a new value is its deviation in robust sigmas,
// |v − level| / (1.4826·mad + ε), with ε floored at a few percent of the
// level so quiet series don't alarm on noise.  Scores are computed on
// every sampler tick that observed the target; a Target flips active
// after Hold consecutive ticks over Threshold and adapts only slowly
// while active (the baseline is mostly frozen), so a genuine regression
// stays flagged instead of being absorbed.
//
// The detector registers anomaly_score / anomaly_active /
// anomaly_events_total gauge+counter families (so anomaly state is
// itself sampled into history) and exposes a health burn source per
// target, letting an anomaly participate in the SLO evaluator exactly
// like a latency or ratio objective — OnTransition fires, the flight
// recorder dumps, degraded mode sheds.
//
// On restart, WarmupFromStore replays stored raw history through the
// baseline (without scoring), so the detector resumes with yesterday's
// notion of normal instead of re-learning from scratch.
package tsdb

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Target is one series (or label-matched slice of a family) to watch.
type Target struct {
	// Name labels the target in anomaly_* metrics and health SLOs.
	Name string
	// Family is the metric family to evaluate.
	Family string
	// Matchers restrict which instances of the family contribute.
	Matchers []telemetry.Label
	// Quantile, for histogram families, evaluates each tick's merged
	// bucket deltas to this quantile (e.g. 0.99).  Zero on a histogram
	// evaluates the tick mean; ignored for counters (per-tick increase)
	// and gauges (sampled value).
	Quantile float64
}

// DetectorConfig parameterizes a Detector.
type DetectorConfig struct {
	// Targets are the watched series.
	Targets []Target
	// Threshold is the robust-sigma score at which a tick counts as
	// anomalous (default 4).
	Threshold float64
	// Warmup is how many ticks a target must observe before scoring
	// (default 12).
	Warmup int
	// Hold is how many consecutive anomalous ticks flip a target active
	// (default 2).
	Hold int
	// Alpha is the EWMA smoothing factor (default 0.2).
	Alpha float64
	// Metrics receives the anomaly_* families (nil is a no-op).
	Metrics *telemetry.Registry
}

// targetState is one target's streaming baseline.
type targetState struct {
	t Target

	n      int
	level  float64
	mad    float64
	score  float64
	streak int
	active bool
	reason string

	scoreG  *telemetry.Gauge
	activeG *telemetry.Gauge
	eventsC *telemetry.Counter
}

// Detector scores sampler ticks against per-target baselines.
type Detector struct {
	cfg   DetectorConfig
	store *Store

	mu      sync.Mutex
	targets []*targetState
}

// NewDetector builds a detector over the given store's series.
func NewDetector(cfg DetectorConfig, store *Store) *Detector {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 4
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 12
	}
	if cfg.Hold <= 0 {
		cfg.Hold = 2
	}
	if cfg.Alpha <= 0 || cfg.Alpha >= 1 {
		cfg.Alpha = 0.2
	}
	d := &Detector{cfg: cfg, store: store}
	for _, t := range cfg.Targets {
		d.targets = append(d.targets, &targetState{
			t:       t,
			scoreG:  cfg.Metrics.Gauge("anomaly_score", "Latest robust-sigma anomaly score, by target.", telemetry.L("target", t.Name)),
			activeG: cfg.Metrics.Gauge("anomaly_active", "1 while the target is in an anomalous episode, by target.", telemetry.L("target", t.Name)),
			eventsC: cfg.Metrics.Counter("anomaly_events_total", "Anomalous episodes entered, by target.", telemetry.L("target", t.Name)),
		})
	}
	return d
}

// Observe scores one sampler tick; wire it via Sampler.OnSample.
func (d *Detector) Observe(ts time.Time, samples []Sample) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, st := range d.targets {
		v, ok := d.tickValue(st.t, samples)
		if !ok {
			continue
		}
		d.score(st, v, true)
	}
}

// tickValue extracts a target's value from one tick's samples: merged
// bucket quantile (or mean) for histograms, summed increase for
// counters, mean sampled value for gauges.  ok is false when no sample
// matched.
func (d *Detector) tickValue(t Target, samples []Sample) (float64, bool) {
	var agg Point
	var kind telemetry.Kind
	matched := false
	for i := range samples {
		sm := &samples[i]
		sr, ok := d.store.lookupSeries(sm.SeriesID)
		if !ok || !matchSeries(sr, &QueryOptions{Family: t.Family, Matchers: t.Matchers}) {
			continue
		}
		kind = sr.Kind
		agg.merge(&sm.Point, sr.Kind)
		matched = true
	}
	if !matched {
		return 0, false
	}
	return pointValue(&agg, kind, t.Quantile), true
}

// pointValue evaluates an aggregate point per target semantics.
func pointValue(p *Point, kind telemetry.Kind, q float64) float64 {
	if kind == telemetry.KindHistogram {
		if p.HCount <= 0 {
			return 0
		}
		if q > 0 {
			return telemetry.QuantileOfCounts(p.HBuckets, q)
		}
		return p.HSum / float64(p.HCount)
	}
	if kind == telemetry.KindCounter {
		return p.Sum
	}
	if p.Count > 0 {
		return p.Sum / float64(p.Count)
	}
	return 0
}

// score folds one observation into a target's baseline and, when live,
// updates the anomaly state and metrics.  Warmup replays call it with
// live=false: baseline only, no scoring.
func (d *Detector) score(st *targetState, v float64, live bool) {
	alpha := d.cfg.Alpha
	if st.n == 0 {
		st.level, st.mad = v, 0
		st.n++
		return
	}
	dev := math.Abs(v - st.level)
	eps := 0.05 * math.Abs(st.level)
	if eps == 0 {
		eps = 1e-9
	}
	score := dev / (1.4826*st.mad + eps)
	anomalous := live && st.n >= d.cfg.Warmup && score >= d.cfg.Threshold
	if anomalous {
		// Mostly freeze the baseline during an episode so a sustained
		// shift stays flagged; adapt at alpha/8 so it eventually resets.
		alpha /= 8
	}
	st.level += alpha * (v - st.level)
	st.mad += alpha * (dev - st.mad)
	st.n++
	if !live {
		return
	}
	st.score = score
	if anomalous {
		st.streak++
	} else {
		st.streak = 0
	}
	wasActive := st.active
	st.active = anomalous && (st.streak >= d.cfg.Hold || wasActive)
	if st.active {
		st.reason = fmt.Sprintf("%s=%.3g is %.1f robust sigmas from level %.3g", st.t.Family, v, score, st.level)
	} else {
		st.reason = ""
	}
	if st.active && !wasActive {
		st.eventsC.Add(1)
	}
	st.scoreG.Set(score)
	if st.active {
		st.activeG.Set(1)
	} else {
		st.activeG.Set(0)
	}
}

// WarmupFromStore replays up to lookback of stored raw history through
// every target's baseline without scoring, so a restarted process
// resumes with its pre-restart notion of normal.  Errors are ignored
// (an empty store warms nothing).
func (d *Detector) WarmupFromStore(lookback time.Duration) {
	if lookback <= 0 {
		lookback = 30 * time.Minute
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, st := range d.targets {
		res, err := d.store.Query(QueryOptions{
			Family:     st.t.Family,
			Matchers:   st.t.Matchers,
			Since:      time.Now().Add(-lookback),
			Quantile:   st.t.Quantile,
			Resolution: ResRaw,
		})
		if err != nil {
			continue
		}
		// Merge the matched series per step (the query already aggregated
		// within each series; cross-series merge uses the evaluated values).
		for _, sr := range res.Series {
			for _, p := range sr.Points {
				d.score(st, p.Value, false)
			}
		}
	}
}

// Status reports one target's current state (for health sources and
// obscheck): the latest score, whether an episode is active, and a
// human-readable reason while one is.
func (d *Detector) Status(name string) (score float64, active bool, reason string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, st := range d.targets {
		if st.t.Name == name {
			return st.score, st.active, st.reason
		}
	}
	return 0, false, ""
}

// Threshold returns the configured robust-sigma threshold.
func (d *Detector) Threshold() float64 { return d.cfg.Threshold }

// TargetNames lists the configured target names in order.
func (d *Detector) TargetNames() []string {
	names := make([]string, 0, len(d.targets))
	for _, st := range d.targets {
		names = append(names, st.t.Name)
	}
	return names
}
