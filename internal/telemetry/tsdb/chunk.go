// chunk.go: the on-disk chunk format — the tsdb's unit of storage, built
// on the same segment/seal/torn-tail discipline as internal/framelog.  A
// chunk file is named by the unix-nanosecond timestamp of its first
// sample batch (`chunk-%020d.chk`, so lexical order is time order), opens
// with an 8-byte magic, and carries back-to-back length-prefixed,
// CRC32C-checked records.  Two record types exist:
//
//	seriesDef — maps a chunk-local varint series id to its identity
//	            (family, kind, sorted labels); written once per series
//	            per chunk, before the series' first sample in that chunk
//	batch     — one sampler tick: a delta-of-delta-encoded timestamp and
//	            one sample per series that had anything to report
//
// Sample values compress per kind: scalar aggregates (count, min, max,
// sum) store their float64 bits XOR'd against the previous batch's bits
// for the same series and field, varint-encoded — unchanged fields cost
// one byte; histogram aggregates store sparse (bucket, delta) varint
// pairs plus an XOR'd sum.  All per-series compression state is scoped to
// one chunk, so chunks are self-contained and a reader never needs
// context from an earlier file.
//
// A *sealed* chunk — one the store rotated away from or closed cleanly —
// ends with a fixed footer (first/last timestamp, batch and sample
// counts) protected by its own CRC and magic, so reopening trusts sealed
// summaries with one seek from EOF.  An unsealed chunk (the process died)
// is scanned record by record; the first torn or corrupt record truncates
// the tail, exactly like framelog crash recovery.
package tsdb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// chunkMagic opens every chunk file.
var chunkMagic = [8]byte{'T', 'S', 'C', 'K', '0', '0', '0', '1'}

// chunkHeaderSize is the chunk file preamble length.
const chunkHeaderSize = 8

// footerMagic closes a sealed chunk's trailer ("TSFX" little-endian).
const footerMagic = 0x58465354

// footerPayloadSize is the fixed footer payload: firstTs, lastTs (i64),
// batches, samples (u64).
const footerPayloadSize = 8 * 4

// footerTrailerSize is payload length u32 | CRC32C u32 | magic u32.
const footerTrailerSize = 12

// record types.
const (
	recSeriesDef = 1
	recBatch     = 2
)

// recordPrefixSize is type u8 | payload len u32 | CRC32C u32.
const recordPrefixSize = 9

// maxRecordPayload bounds one record payload; anything larger is treated
// as corruption by the scanner.
const maxRecordPayload = 16 << 20

// castagnoli is the CRC32C table shared by records and footers (the same
// polynomial the framelog uses).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Series is one stored time series' identity: a metric family, its kind,
// and a sorted label set.  Histograms are one series (their bucket vector
// travels inside the sample); counters and gauges are scalar series.
type Series struct {
	// Family is the metric family name (e.g. "acq_process_ns").
	Family string
	// Kind is the family's telemetry kind.
	Kind telemetry.Kind
	// Labels are the instance's dimensions, sorted by key.
	Labels []telemetry.Label
}

// Key returns the canonical identity string of the series (family plus
// sorted label signature) — the map key the store indexes by.
func (s Series) Key() string {
	var b strings.Builder
	b.WriteString(s.Family)
	for _, l := range s.Labels {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// Point is one stored sample: an aggregate over the interval it covers.
// A raw sampler tick is an aggregate of one (Count 1, Min = Max = Sum =
// the sampled value for scalars); downsampled points merge many.  For
// histogram series the scalar fields are unused and the bucket vector,
// observation count and value sum carry the distribution delta.
type Point struct {
	// Count is the number of raw samples merged into this point (scalar
	// series) — 1 at raw resolution.
	Count int64
	// Min, Max and Sum aggregate the sampled values (scalar series).  For
	// counter series the sampled value is the per-interval increase.
	Min, Max, Sum float64
	// HCount is the histogram observation-count delta over the interval.
	HCount int64
	// HSum is the histogram sum delta over the interval.
	HSum float64
	// HBuckets are the histogram per-bucket count deltas over the interval.
	HBuckets [telemetry.NumBuckets]int64
}

// merge folds other into p (histogram buckets add; scalar aggregates
// combine min/max/sum/count).
func (p *Point) merge(o *Point, kind telemetry.Kind) {
	if kind == telemetry.KindHistogram {
		p.HCount += o.HCount
		p.HSum += o.HSum
		for i := range p.HBuckets {
			p.HBuckets[i] += o.HBuckets[i]
		}
		return
	}
	if p.Count == 0 {
		p.Min, p.Max = o.Min, o.Max
	} else if o.Count > 0 {
		p.Min = math.Min(p.Min, o.Min)
		p.Max = math.Max(p.Max, o.Max)
	}
	p.Count += o.Count
	p.Sum += o.Sum
}

// Sample is one series' point at one batch timestamp.
type Sample struct {
	// SeriesID is the store-assigned series identity (stable for the
	// store's lifetime, re-declared per chunk on disk).
	SeriesID uint32
	// Point is the sample's aggregate payload.
	Point Point
}

// chunkFileName renders the canonical file name for a chunk whose first
// batch is stamped ts (unix nanoseconds).
func chunkFileName(ts int64) string {
	return fmt.Sprintf("chunk-%020d.chk", ts)
}

// parseChunkName extracts the first-batch timestamp from a chunk name.
func parseChunkName(name string) (int64, bool) {
	if !strings.HasPrefix(name, "chunk-") || !strings.HasSuffix(name, ".chk") {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, "chunk-"), ".chk")
	if len(digits) != 20 {
		return 0, false
	}
	ts, err := strconv.ParseInt(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return ts, true
}

// listChunkFiles returns the chunk file names in dir, time-ascending.
func listChunkFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if _, ok := parseChunkName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// zigzag encodes a signed value for varint storage.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// encState is the per-series XOR compression state within one chunk: the
// previous batch's float bits per field.
type encState struct {
	countPrev                 uint64
	minBits, maxBits, sumBits uint64
	hsumBits                  uint64
	hcountPrev                uint64
}

// appendFloatXOR appends v's bits XOR'd against *prev (updating it).
func appendFloatXOR(dst []byte, prev *uint64, v float64) []byte {
	bits := math.Float64bits(v)
	dst = binary.AppendUvarint(dst, bits^*prev)
	*prev = bits
	return dst
}

// readFloatXOR reads one XOR-encoded float, updating *prev.
func readFloatXOR(r *byteReader, prev *uint64) (float64, error) {
	x, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	*prev ^= x
	return math.Float64frombits(*prev), nil
}

// byteReader walks a record payload.
type byteReader struct {
	data []byte
	pos  int
}

var errShortPayload = errors.New("tsdb: truncated record payload")

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, errShortPayload
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.data)-r.pos) {
		return "", errShortPayload
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *byteReader) done() bool { return r.pos >= len(r.data) }

// appendStr appends a varint-length-prefixed string.
func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// chunkWriter appends records to one open chunk file.  All compression
// state (series defs emitted, XOR/timestamp state) is chunk-scoped.
type chunkWriter struct {
	f    *os.File
	bw   *bufio.Writer
	path string

	bytes   int64
	batches uint64
	samples uint64

	firstTs, lastTs int64
	prevDelta       int64

	defined map[uint32]bool
	enc     map[uint32]*encState

	scratch []byte
}

// createChunk opens a fresh chunk file named for ts and writes the magic.
func createChunk(dir string, ts int64) (*chunkWriter, error) {
	path := filepath.Join(dir, chunkFileName(ts))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	w := &chunkWriter{
		f:       f,
		bw:      bufio.NewWriterSize(f, 64<<10),
		path:    path,
		defined: map[uint32]bool{},
		enc:     map[uint32]*encState{},
	}
	if _, err := w.bw.Write(chunkMagic[:]); err != nil {
		f.Close()
		return nil, err
	}
	w.bytes = chunkHeaderSize
	return w, nil
}

// writeRecord frames and writes one record (type, length, CRC, payload).
func (w *chunkWriter) writeRecord(typ byte, payload []byte) error {
	var prefix [recordPrefixSize]byte
	prefix[0] = typ
	binary.LittleEndian.PutUint32(prefix[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(prefix[5:9], crc32.Checksum(payload, castagnoli))
	if _, err := w.bw.Write(prefix[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	w.bytes += recordPrefixSize + int64(len(payload))
	return nil
}

// writeDef emits a seriesDef record for id.
func (w *chunkWriter) writeDef(id uint32, s Series) error {
	b := w.scratch[:0]
	b = binary.AppendUvarint(b, uint64(id))
	b = append(b, byte(s.Kind))
	b = appendStr(b, s.Family)
	b = binary.AppendUvarint(b, uint64(len(s.Labels)))
	for _, l := range s.Labels {
		b = appendStr(b, l.Key)
		b = appendStr(b, l.Value)
	}
	w.scratch = b
	if err := w.writeRecord(recSeriesDef, b); err != nil {
		return err
	}
	w.defined[id] = true
	return nil
}

// appendBatch writes one sample batch at ts, emitting seriesDef records
// for any series this chunk has not yet declared.  lookup resolves a
// series id to its identity.  The write lands in the OS page cache on
// return (the buffered writer is flushed), so concurrent readers — and a
// post-crash recovery scan — see every acknowledged batch.
func (w *chunkWriter) appendBatch(ts int64, samples []Sample, lookup func(uint32) (Series, bool)) error {
	for _, s := range samples {
		if !w.defined[s.SeriesID] {
			series, ok := lookup(s.SeriesID)
			if !ok {
				return fmt.Errorf("tsdb: unknown series id %d", s.SeriesID)
			}
			if err := w.writeDef(s.SeriesID, series); err != nil {
				return err
			}
		}
	}

	b := w.scratch[:0]
	// Timestamps: first batch stores the absolute stamp, the second a
	// zigzag delta, later ones the delta-of-delta — regular sampler
	// cadence costs one byte per batch.
	switch {
	case w.batches == 0:
		b = binary.AppendUvarint(b, uint64(ts))
		w.firstTs = ts
	case w.batches == 1:
		delta := ts - w.lastTs
		b = binary.AppendUvarint(b, zigzag(delta))
		w.prevDelta = delta
	default:
		delta := ts - w.lastTs
		b = binary.AppendUvarint(b, zigzag(delta-w.prevDelta))
		w.prevDelta = delta
	}
	b = binary.AppendUvarint(b, uint64(len(samples)))
	for i := range samples {
		s := &samples[i]
		series, _ := lookup(s.SeriesID)
		b = binary.AppendUvarint(b, uint64(s.SeriesID))
		st := w.enc[s.SeriesID]
		if st == nil {
			st = &encState{}
			w.enc[s.SeriesID] = st
		}
		if series.Kind == telemetry.KindHistogram {
			b = binary.AppendUvarint(b, zigzag(s.Point.HCount-int64(st.hcountPrev)))
			st.hcountPrev = uint64(s.Point.HCount)
			b = appendFloatXOR(b, &st.hsumBits, s.Point.HSum)
			n := 0
			for _, c := range s.Point.HBuckets {
				if c != 0 {
					n++
				}
			}
			b = binary.AppendUvarint(b, uint64(n))
			for i, c := range s.Point.HBuckets {
				if c != 0 {
					b = binary.AppendUvarint(b, uint64(i))
					b = binary.AppendUvarint(b, zigzag(c))
				}
			}
		} else {
			b = binary.AppendUvarint(b, zigzag(s.Point.Count-int64(st.countPrev)))
			st.countPrev = uint64(s.Point.Count)
			b = appendFloatXOR(b, &st.minBits, s.Point.Min)
			b = appendFloatXOR(b, &st.maxBits, s.Point.Max)
			b = appendFloatXOR(b, &st.sumBits, s.Point.Sum)
		}
	}
	w.scratch = b
	if err := w.writeRecord(recBatch, b); err != nil {
		return err
	}
	w.lastTs = ts
	w.batches++
	w.samples += uint64(len(samples))
	return w.bw.Flush()
}

// seal writes the footer and closes the file; the chunk is immutable
// afterwards.
func (w *chunkWriter) seal() error {
	var payload [footerPayloadSize]byte
	binary.LittleEndian.PutUint64(payload[0:8], uint64(w.firstTs))
	binary.LittleEndian.PutUint64(payload[8:16], uint64(w.lastTs))
	binary.LittleEndian.PutUint64(payload[16:24], w.batches)
	binary.LittleEndian.PutUint64(payload[24:32], w.samples)
	var trailer [footerTrailerSize]byte
	binary.LittleEndian.PutUint32(trailer[0:4], footerPayloadSize)
	binary.LittleEndian.PutUint32(trailer[4:8], crc32.Checksum(payload[:], castagnoli))
	binary.LittleEndian.PutUint32(trailer[8:12], footerMagic)
	if _, err := w.bw.Write(payload[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(trailer[:]); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Close()
}

// abort closes the file without sealing (the chunk stays scannable).
func (w *chunkWriter) abort() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Close()
}

// chunkFooter is a parsed sealed-chunk summary.
type chunkFooter struct {
	firstTs, lastTs  int64
	batches, samples uint64
	// start is the file offset where the footer payload begins.
	start int64
}

// probeChunkFooter parses a sealed chunk's footer from the end of f,
// returning (nil, nil) when the file has none — unsealed or torn.
func probeChunkFooter(f io.ReaderAt, size int64) (*chunkFooter, error) {
	if size < chunkHeaderSize+footerPayloadSize+footerTrailerSize {
		return nil, nil
	}
	var tr [footerTrailerSize]byte
	if _, err := f.ReadAt(tr[:], size-footerTrailerSize); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(tr[8:12]) != footerMagic ||
		binary.LittleEndian.Uint32(tr[0:4]) != footerPayloadSize {
		return nil, nil
	}
	var payload [footerPayloadSize]byte
	start := size - footerTrailerSize - footerPayloadSize
	if _, err := f.ReadAt(payload[:], start); err != nil {
		return nil, err
	}
	if crc32.Checksum(payload[:], castagnoli) != binary.LittleEndian.Uint32(tr[4:8]) {
		return nil, nil
	}
	return &chunkFooter{
		firstTs: int64(binary.LittleEndian.Uint64(payload[0:8])),
		lastTs:  int64(binary.LittleEndian.Uint64(payload[8:16])),
		batches: binary.LittleEndian.Uint64(payload[16:24]),
		samples: binary.LittleEndian.Uint64(payload[24:32]),
		start:   start,
	}, nil
}

// Batch is one decoded sample batch handed to scan callbacks.
type Batch struct {
	// Ts is the batch timestamp, unix nanoseconds.
	Ts int64
	// Samples are the batch's decoded samples.  The slice and the series
	// ids are valid only during the callback.
	Samples []Sample
}

// chunkScanState decodes records sequentially, mirroring chunkWriter's
// compression state.
type chunkScanState struct {
	series map[uint32]Series
	dec    map[uint32]*encState

	batches         uint64
	firstTs, lastTs int64
	prevDelta       int64

	samples []Sample
}

// decodeDef parses a seriesDef payload into the scan dictionary.
func (st *chunkScanState) decodeDef(payload []byte) error {
	r := &byteReader{data: payload}
	id, err := r.uvarint()
	if err != nil {
		return err
	}
	if r.pos >= len(r.data) {
		return errShortPayload
	}
	kind := telemetry.Kind(r.data[r.pos])
	r.pos++
	family, err := r.str()
	if err != nil {
		return err
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n > 1024 {
		return errors.New("tsdb: absurd label count")
	}
	labels := make([]telemetry.Label, 0, n)
	for i := uint64(0); i < n; i++ {
		k, err := r.str()
		if err != nil {
			return err
		}
		v, err := r.str()
		if err != nil {
			return err
		}
		labels = append(labels, telemetry.Label{Key: k, Value: v})
	}
	st.series[uint32(id)] = Series{Family: family, Kind: kind, Labels: labels}
	return nil
}

// decodeBatch parses one batch payload, returning its timestamp and
// filling st.samples.
func (st *chunkScanState) decodeBatch(payload []byte) (int64, error) {
	r := &byteReader{data: payload}
	tsw, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	var ts int64
	switch st.batches {
	case 0:
		ts = int64(tsw)
		st.firstTs = ts
	case 1:
		delta := unzigzag(tsw)
		ts = st.lastTs + delta
		st.prevDelta = delta
	default:
		delta := st.prevDelta + unzigzag(tsw)
		ts = st.lastTs + delta
		st.prevDelta = delta
	}
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > maxRecordPayload {
		return 0, errors.New("tsdb: absurd sample count")
	}
	st.samples = st.samples[:0]
	for i := uint64(0); i < n; i++ {
		idw, err := r.uvarint()
		if err != nil {
			return 0, err
		}
		id := uint32(idw)
		series, ok := st.series[id]
		if !ok {
			return 0, fmt.Errorf("tsdb: sample for undeclared series id %d", id)
		}
		dec := st.dec[id]
		if dec == nil {
			dec = &encState{}
			st.dec[id] = dec
		}
		var p Point
		if series.Kind == telemetry.KindHistogram {
			cd, err := r.uvarint()
			if err != nil {
				return 0, err
			}
			p.HCount = int64(dec.hcountPrev) + unzigzag(cd)
			dec.hcountPrev = uint64(p.HCount)
			if p.HSum, err = readFloatXOR(r, &dec.hsumBits); err != nil {
				return 0, err
			}
			pairs, err := r.uvarint()
			if err != nil {
				return 0, err
			}
			if pairs > telemetry.NumBuckets {
				return 0, errors.New("tsdb: absurd bucket count")
			}
			for j := uint64(0); j < pairs; j++ {
				idx, err := r.uvarint()
				if err != nil {
					return 0, err
				}
				cw, err := r.uvarint()
				if err != nil {
					return 0, err
				}
				if idx >= telemetry.NumBuckets {
					return 0, errors.New("tsdb: bucket index out of range")
				}
				p.HBuckets[idx] = unzigzag(cw)
			}
		} else {
			cd, err := r.uvarint()
			if err != nil {
				return 0, err
			}
			p.Count = int64(dec.countPrev) + unzigzag(cd)
			dec.countPrev = uint64(p.Count)
			if p.Min, err = readFloatXOR(r, &dec.minBits); err != nil {
				return 0, err
			}
			if p.Max, err = readFloatXOR(r, &dec.maxBits); err != nil {
				return 0, err
			}
			if p.Sum, err = readFloatXOR(r, &dec.sumBits); err != nil {
				return 0, err
			}
		}
		st.samples = append(st.samples, Sample{SeriesID: id, Point: p})
	}
	if !r.done() {
		return 0, errors.New("tsdb: trailing bytes in batch record")
	}
	st.lastTs = ts
	st.batches++
	return ts, nil
}

// chunkScanResult summarizes one pass over a chunk's record region.
type chunkScanResult struct {
	batches, samples uint64
	firstTs, lastTs  int64
	// validBytes is the record-region byte count that parsed and verified;
	// the scan stops at the first torn or corrupt record.
	validBytes int64
	sealed     bool
}

// errStopScan lets a scan callback end the pass early without error.
var errStopScan = errors.New("tsdb: stop scan")

// scanChunk verifies every record of one chunk file, calling fn (when
// non-nil) with each decoded batch and the chunk's series dictionary.
// Batch sample slices alias scan scratch and are only valid during the
// call.  Returning errStopScan from fn ends the pass early.
func scanChunk(path string, fn func(series map[uint32]Series, b Batch) error) (chunkScanResult, error) {
	var res chunkScanResult
	f, err := os.Open(path)
	if err != nil {
		return res, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return res, err
	}
	size := fi.Size()
	var magic [chunkHeaderSize]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || magic != chunkMagic {
		return res, fmt.Errorf("tsdb: %s is not a tsdb chunk", path)
	}
	ft, err := probeChunkFooter(f, size)
	if err != nil {
		return res, err
	}
	limit := size
	if ft != nil {
		res.sealed = true
		limit = ft.start
	}
	if _, err := f.Seek(chunkHeaderSize, io.SeekStart); err != nil {
		return res, err
	}
	br := bufio.NewReaderSize(io.LimitReader(f, limit-chunkHeaderSize), 128<<10)

	st := &chunkScanState{series: map[uint32]Series{}, dec: map[uint32]*encState{}}
	var prefix [recordPrefixSize]byte
	var payload []byte
	offset := int64(chunkHeaderSize)
	for {
		if _, err := io.ReadFull(br, prefix[:]); err != nil {
			break // clean EOF or torn prefix: stop here
		}
		typ := prefix[0]
		plen := binary.LittleEndian.Uint32(prefix[1:5])
		crc := binary.LittleEndian.Uint32(prefix[5:9])
		if (typ != recSeriesDef && typ != recBatch) || plen > maxRecordPayload {
			break // garbage after a torn write
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			break // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			break // corrupt record
		}
		switch typ {
		case recSeriesDef:
			if st.decodeDef(payload) != nil {
				break
			}
		case recBatch:
			ts, err := st.decodeBatch(payload)
			if err != nil {
				break
			}
			if res.batches == 0 {
				res.firstTs = ts
			}
			res.lastTs = ts
			res.batches++
			res.samples += uint64(len(st.samples))
			if fn != nil {
				if err := fn(st.series, Batch{Ts: ts, Samples: st.samples}); err != nil {
					if errors.Is(err, errStopScan) {
						offset += recordPrefixSize + int64(plen)
						res.validBytes = offset - chunkHeaderSize
						return res, nil
					}
					return res, err
				}
			}
		}
		offset += recordPrefixSize + int64(plen)
		res.validBytes = offset - chunkHeaderSize
	}
	if ft != nil && (res.batches != ft.batches || res.lastTs != ft.lastTs) {
		return res, fmt.Errorf("tsdb: %s footer claims %d batches through %d, scan found %d through %d",
			path, ft.batches, ft.lastTs, res.batches, res.lastTs)
	}
	return res, nil
}

// sealExisting truncates a chunk file to validBytes of record region (the
// torn-tail cut) and appends a footer built from the scan summary, so a
// crash-recovered chunk becomes a normal sealed one.
func sealExisting(path string, res chunkScanResult) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	end := chunkHeaderSize + res.validBytes
	if err := f.Truncate(end); err != nil {
		return err
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		return err
	}
	var payload [footerPayloadSize]byte
	binary.LittleEndian.PutUint64(payload[0:8], uint64(res.firstTs))
	binary.LittleEndian.PutUint64(payload[8:16], uint64(res.lastTs))
	binary.LittleEndian.PutUint64(payload[16:24], res.batches)
	binary.LittleEndian.PutUint64(payload[24:32], res.samples)
	var trailer [footerTrailerSize]byte
	binary.LittleEndian.PutUint32(trailer[0:4], footerPayloadSize)
	binary.LittleEndian.PutUint32(trailer[4:8], crc32.Checksum(payload[:], castagnoli))
	binary.LittleEndian.PutUint32(trailer[8:12], footerMagic)
	if _, err := f.Write(payload[:]); err != nil {
		return err
	}
	if _, err := f.Write(trailer[:]); err != nil {
		return err
	}
	return f.Sync()
}
