package tsdb

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestHistoryQueryDuringSamplingRace hammers /metrics/history while the
// sampler is appending and the registry is being written — the live-drain
// shape: queries read chunk files through their own fds while Append
// rotates and seals them under the store mutex.  Run under -race (make
// check does) this proves the reader/writer split is sound; the final
// section exercises the graceful-drain sequence (Stop, one last sample,
// Close) with a query still in flight.
func TestHistoryQueryDuringSamplingRace(t *testing.T) {
	store := testStore(t, func(c *Config) {
		c.MaxChunkBatches = 8 // rotate often so queries cross seals
	})
	reg := telemetry.NewRegistry()
	sp := NewSampler(reg, store, time.Second)
	h := store.Handler()
	base := time.Unix(1_700_000_000, 0)

	var stop atomic.Bool
	var wg sync.WaitGroup

	hist := reg.Histogram("acq_process_ns", "", telemetry.L("path", "hybrid"))
	frames := reg.Counter("acq_frames_total", "")
	depth := reg.Gauge("acq_queue_depth", "")

	// A concurrent producer keeps the registry hot while ticks run; the
	// main loop below also writes each tick so the stored increase is
	// guaranteed even if the scheduler starves this goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			hist.Observe(1e6 + float64(i%1000))
			frames.Add(1)
			depth.Set(float64(i % 32))
		}
	}()

	// Query hammers: valid and invalid requests interleaved.
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				url := fmt.Sprintf("/metrics/history?family=acq_process_ns&quantile=0.99&since=%d&until=%d&step=2s",
					base.Unix(), base.Add(300*time.Second).Unix())
				if i%5 == q { // a bad request now and then
					url = "/metrics/history?quantile=2"
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
				if rec.Code != 200 && rec.Code != 400 {
					t.Errorf("query status %d: %s", rec.Code, rec.Body.String())
					return
				}
				if rec.Code == 200 {
					var qr QueryResult
					if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
						t.Errorf("query body undecodable: %v", err)
						return
					}
				}
			}
		}(q)
	}

	// The sampler itself: synthetic seconds so agg windows and rotations
	// fire; 200 ticks crosses many 1m windows and several raw chunks.
	for i := 0; i < 200; i++ {
		frames.Add(1)
		hist.Observe(2e6)
		sp.SampleOnce(base.Add(time.Duration(i) * time.Second))
	}
	stop.Store(true)
	wg.Wait()

	// Graceful drain with a straggler query in flight.
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET",
			fmt.Sprintf("/metrics/history?family=acq_frames_total&since=%d&until=%d",
				base.Unix(), base.Add(300*time.Second).Unix()), nil))
	}()
	sp.Stop()
	sp.SampleOnce(base.Add(201 * time.Second))
	qwg.Wait()
	if err := store.Close(); err != nil {
		t.Fatalf("close after drain: %v", err)
	}

	// Reopen read-only style and confirm the drained data is all there.
	store2, err := Open(DefaultConfig(store.Dir()))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer store2.Close()
	// Since reaches back one 10m window: downsampled points are stamped at
	// their window START, and base is mid-window, so a query from base
	// exactly would exclude the aggregate covering it.
	res, err := store2.Query(QueryOptions{
		Family: "acq_frames_total", Since: base.Add(-10 * time.Minute), Until: base.Add(300 * time.Second),
		Step: 900 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || len(res.Series[0].Points) == 0 || res.Series[0].Points[0].Value <= 0 {
		t.Fatalf("post-drain history = %+v, want the hammered counter increase", res)
	}
}

// benchRegistry builds a registry shaped like a busy imsd: a few dozen
// series across kinds, the histograms hot.
func benchRegistry() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	for s := 0; s < 8; s++ {
		l := telemetry.L("shard", fmt.Sprintf("%d", s))
		h := reg.Histogram("acq_process_ns", "", l)
		for i := 0; i < 256; i++ {
			h.Observe(1e5 * float64(1+i%7))
		}
		reg.Counter("acq_frames_total", "", l).Add(int64(1000 + s))
		reg.Gauge("acq_queue_depth", "", l).Set(float64(s))
	}
	reg.Counter("acq_shed_total", "").Add(3)
	reg.Gauge("health_status", "").Set(0)
	return reg
}

// TestSamplerSampleOnceUnderMillisecond is the PR's overhead proof: one
// snapshot-diff-append tick over a realistically shaped registry must cost
// well under a millisecond.  Best-of-N defeats scheduler noise — the claim
// is about the code path, not the worst-case timeslice.
func TestSamplerSampleOnceUnderMillisecond(t *testing.T) {
	store := testStore(t, nil)
	reg := benchRegistry()
	sp := NewSampler(reg, store, time.Second)
	base := time.Unix(1_700_000_000, 0)
	sp.SampleOnce(base) // baseline tick: everything gets defined/interned

	best := time.Duration(1 << 62)
	for i := 1; i <= 50; i++ {
		// Touch the registry so every tick has deltas to encode.
		for s := 0; s < 8; s++ {
			reg.Histogram("acq_process_ns", "", telemetry.L("shard", fmt.Sprintf("%d", s))).Observe(1e6)
			reg.Counter("acq_frames_total", "", telemetry.L("shard", fmt.Sprintf("%d", s))).Add(5)
		}
		t0 := time.Now()
		sp.SampleOnce(base.Add(time.Duration(i) * time.Second))
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	if best >= time.Millisecond {
		t.Fatalf("best-of-50 SampleOnce = %v, want < 1ms", best)
	}
	t.Logf("best-of-50 SampleOnce = %v", best)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkSamplerSampleOnce measures one sampler tick end to end:
// Registry.Snapshot, diff against the previous tick, encode and append
// the delta batch to the raw chunk plus the two agg levels.
func BenchmarkSamplerSampleOnce(b *testing.B) {
	dir := b.TempDir()
	store, err := Open(DefaultConfig(dir))
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	reg := benchRegistry()
	sp := NewSampler(reg, store, time.Second)
	base := time.Unix(1_700_000_000, 0)
	sp.SampleOnce(base)
	counters := make([]*telemetry.Counter, 8)
	hists := make([]*telemetry.Histogram, 8)
	for s := 0; s < 8; s++ {
		l := telemetry.L("shard", fmt.Sprintf("%d", s))
		counters[s] = reg.Counter("acq_frames_total", "", l)
		hists[s] = reg.Histogram("acq_process_ns", "", l)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 8; s++ {
			counters[s].Add(3)
			hists[s].Observe(1e6)
		}
		sp.SampleOnce(base.Add(time.Duration(i+1) * time.Second))
	}
}
