// query.go: range reads over the store — scan the chunk files of one
// resolution level, filter by family and label matchers, bucket points
// into fixed steps, and evaluate a per-kind value (counter increase,
// gauge average, histogram quantile).  Queries never touch writer state:
// they open chunk files through their own descriptors, so they are safe
// concurrently with the sampler and against a directory whose store has
// closed (or crashed — an unsealed chunk reads up to its torn tail).
package tsdb

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// QueryOptions selects and shapes a range read.
type QueryOptions struct {
	// Family is the metric family to read (exact name, required).
	Family string
	// Matchers restrict results to series whose labels include every
	// listed key=value pair.
	Matchers []telemetry.Label
	// Since and Until bound the range (Until zero means now).
	Since, Until time.Time
	// Step is the output bucket width; zero picks a width that yields
	// roughly 100 points over the range (floored at the store resolution).
	Step time.Duration
	// Quantile, when in (0,1), evaluates histogram series to that
	// windowed quantile per step; zero yields the per-step mean.
	Quantile float64
	// Resolution names the level to read (ResRaw, Res1m, Res10m); empty
	// or "auto" picks the finest level whose retention covers Since.
	Resolution string
}

// QueryPoint is one evaluated output step.
type QueryPoint struct {
	// T is the step's start, unix seconds.
	T int64 `json:"t"`
	// Value is the per-kind evaluation: counter increase over the step,
	// gauge average, histogram quantile (or mean when no quantile was
	// requested).
	Value float64 `json:"value"`
	// Count is the raw-sample (scalar) or observation (histogram) count
	// merged into the step.
	Count int64 `json:"count,omitempty"`
	// Min and Max bound the gauge/counter samples inside the step
	// (omitted for histograms).
	Min float64 `json:"min,omitempty"`
	// Max is the step's maximum sampled value.
	Max float64 `json:"max,omitempty"`
}

// SeriesResult is one matched series' evaluated points.
type SeriesResult struct {
	// Labels identify the series instance.
	Labels map[string]string `json:"labels,omitempty"`
	// Points are the non-empty steps, time-ascending.
	Points []QueryPoint `json:"points"`
}

// QueryResult is a full range-read response (the /metrics/history body).
type QueryResult struct {
	// Family is the queried family name.
	Family string `json:"family"`
	// Kind is the family's kind ("counter", "gauge", "histogram").
	Kind string `json:"kind"`
	// Resolution names the level that served the read.
	Resolution string `json:"resolution"`
	// StepS is the output step width in seconds.
	StepS float64 `json:"step_s"`
	// Quantile echoes the evaluated quantile (0 when none).
	Quantile float64 `json:"quantile,omitempty"`
	// Series lists every matched series with at least one point.
	Series []SeriesResult `json:"series"`
}

// matchSeries reports whether sr belongs to the query.
func matchSeries(sr Series, opts *QueryOptions) bool {
	if sr.Family != opts.Family {
		return false
	}
	for _, m := range opts.Matchers {
		found := false
		for _, l := range sr.Labels {
			if l.Key == m.Key {
				found = l.Value == m.Value
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// stepAgg accumulates one series' samples inside one output step.
type stepAgg struct {
	point Point
	kind  telemetry.Kind
}

// Query evaluates a range read.  See QueryOptions for semantics.
func (s *Store) Query(opts QueryOptions) (*QueryResult, error) {
	if s == nil {
		return nil, fmt.Errorf("tsdb: store disabled")
	}
	if opts.Family == "" {
		return nil, fmt.Errorf("tsdb: query requires a family")
	}
	if opts.Until.IsZero() {
		opts.Until = time.Now()
	}
	if opts.Since.IsZero() {
		opts.Since = opts.Until.Add(-15 * time.Minute)
	}
	if !opts.Since.Before(opts.Until) {
		return nil, fmt.Errorf("tsdb: empty range (since %s >= until %s)", opts.Since.Format(time.RFC3339), opts.Until.Format(time.RFC3339))
	}
	if opts.Quantile < 0 || opts.Quantile >= 1 {
		return nil, fmt.Errorf("tsdb: quantile must be in [0,1), got %g", opts.Quantile)
	}
	s.mu.Lock()
	lv, err := s.pickResolution(opts.Resolution, opts.Since)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	step := opts.Step
	if step <= 0 {
		step = opts.Until.Sub(opts.Since) / 100
	}
	if lv.window > 0 && step < lv.window {
		step = lv.window
	}
	if step < time.Second {
		step = time.Second
	}

	sinceNs, untilNs := opts.Since.UnixNano(), opts.Until.UnixNano()
	stepNs := int64(step)

	// seriesKey -> (stepStart -> agg); keys keep output deterministic.
	acc := map[string]map[int64]*stepAgg{}
	labelsOf := map[string]map[string]string{}

	names, err := listChunkFiles(lv.dir)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		firstTs, _ := parseChunkName(name)
		if firstTs > untilNs {
			continue
		}
		path := lv.dir + "/" + name
		// Skip chunks that end before the range using the sealed footer
		// (unsealed chunks are scanned regardless — they are the newest).
		if sealedEndsBefore(path, sinceNs) {
			continue
		}
		_, err := scanChunk(path, func(series map[uint32]Series, b Batch) error {
			if b.Ts > untilNs {
				return errStopScan
			}
			if b.Ts < sinceNs {
				return nil
			}
			for i := range b.Samples {
				sm := &b.Samples[i]
				sr, ok := series[sm.SeriesID]
				if !ok || !matchSeries(sr, &opts) {
					continue
				}
				key := sr.Key()
				steps := acc[key]
				if steps == nil {
					steps = map[int64]*stepAgg{}
					acc[key] = steps
					lm := map[string]string{}
					for _, l := range sr.Labels {
						lm[l.Key] = l.Value
					}
					labelsOf[key] = lm
				}
				stepStart := sinceNs + (b.Ts-sinceNs)/stepNs*stepNs
				ag := steps[stepStart]
				if ag == nil {
					ag = &stepAgg{kind: sr.Kind}
					steps[stepStart] = ag
				}
				ag.point.merge(&sm.Point, sr.Kind)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var kind telemetry.Kind
	res := &QueryResult{
		Family:     opts.Family,
		Resolution: lv.name,
		StepS:      step.Seconds(),
		Quantile:   opts.Quantile,
		Series:     []SeriesResult{},
	}
	keys := make([]string, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		steps := acc[key]
		starts := make([]int64, 0, len(steps))
		for st := range steps {
			starts = append(starts, st)
		}
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		sr := SeriesResult{Labels: labelsOf[key]}
		for _, st := range starts {
			ag := steps[st]
			kind = ag.kind
			sr.Points = append(sr.Points, evalPoint(st, ag, opts.Quantile))
		}
		res.Series = append(res.Series, sr)
	}
	res.Kind = kind.String()
	if len(res.Series) == 0 {
		res.Kind = ""
	}
	return res, nil
}

// evalPoint turns one step aggregate into an output point.
func evalPoint(startNs int64, ag *stepAgg, q float64) QueryPoint {
	p := QueryPoint{T: startNs / int64(time.Second)}
	if ag.kind == telemetry.KindHistogram {
		p.Count = ag.point.HCount
		switch {
		case q > 0 && ag.point.HCount > 0:
			p.Value = telemetry.QuantileOfCounts(ag.point.HBuckets, q)
		case ag.point.HCount > 0:
			p.Value = ag.point.HSum / float64(ag.point.HCount)
		}
		return p
	}
	p.Count = ag.point.Count
	p.Min, p.Max = ag.point.Min, ag.point.Max
	if ag.kind == telemetry.KindCounter {
		// Counters store per-interval increases; the step value is their sum.
		p.Value = ag.point.Sum
	} else if ag.point.Count > 0 {
		p.Value = ag.point.Sum / float64(ag.point.Count)
	}
	return p
}

// sealedEndsBefore reports whether path is a sealed chunk whose last
// sample predates tsNs (a cheap footer probe; false on any doubt).
func sealedEndsBefore(path string, tsNs int64) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return false
	}
	ft, err := probeChunkFooter(f, fi.Size())
	if err != nil || ft == nil {
		return false
	}
	return ft.lastTs < tsNs
}

// parseTimeParam parses a query time parameter: RFC3339, unix seconds,
// unix nanoseconds, or a relative offset like "-15m" against now.
func parseTimeParam(v string, now time.Time) (time.Time, error) {
	if v == "" {
		return time.Time{}, nil
	}
	if strings.HasPrefix(v, "-") {
		d, err := time.ParseDuration(v)
		if err != nil {
			return time.Time{}, fmt.Errorf("bad relative time %q: %w", v, err)
		}
		return now.Add(d), nil
	}
	if n, err := strconv.ParseInt(v, 10, 64); err == nil {
		// Heuristic: values past the year ~2262 in seconds are nanos.
		if n > 1e15 {
			return time.Unix(0, n), nil
		}
		return time.Unix(n, 0), nil
	}
	t, err := time.Parse(time.RFC3339, v)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad time %q (want RFC3339, unix, or -duration)", v)
	}
	return t, nil
}

// ParseQuery builds QueryOptions from /metrics/history URL parameters:
// family (required), match=k=v (repeatable), since, until, step,
// quantile, res.
func ParseQuery(r *http.Request) (QueryOptions, error) {
	var opts QueryOptions
	q := r.URL.Query()
	opts.Family = q.Get("family")
	if opts.Family == "" {
		return opts, fmt.Errorf("missing required parameter: family")
	}
	for _, m := range q["match"] {
		k, v, ok := strings.Cut(m, "=")
		if !ok || k == "" {
			return opts, fmt.Errorf("bad match %q (want key=value)", m)
		}
		opts.Matchers = append(opts.Matchers, telemetry.L(k, v))
	}
	now := time.Now()
	var err error
	if opts.Since, err = parseTimeParam(q.Get("since"), now); err != nil {
		return opts, err
	}
	if opts.Until, err = parseTimeParam(q.Get("until"), now); err != nil {
		return opts, err
	}
	if sv := q.Get("step"); sv != "" {
		d, err := time.ParseDuration(sv)
		if err != nil || d <= 0 {
			return opts, fmt.Errorf("bad step %q", sv)
		}
		opts.Step = d
	}
	if qv := q.Get("quantile"); qv != "" {
		f, err := strconv.ParseFloat(qv, 64)
		if err != nil || f < 0 || f >= 1 || math.IsNaN(f) {
			return opts, fmt.Errorf("bad quantile %q (want [0,1))", qv)
		}
		opts.Quantile = f
	}
	opts.Resolution = q.Get("res")
	return opts, nil
}

// Handler serves /metrics/history range reads as JSON.  A nil store
// serves 404 "history disabled", so callers can mount unconditionally.
func (s *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s == nil {
			http.Error(w, "history disabled (run with -history)", http.StatusNotFound)
			return
		}
		opts, err := ParseQuery(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := s.Query(opts)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(res)
	})
}
