// sampler.go: the bridge from the live registry to the store.  A Sampler
// periodically takes a Registry snapshot and diffs it against the
// previous tick's state, emitting per-interval aggregate samples:
// counters become increase-per-tick deltas (so downsampled sums are
// rates, immune to restart resets), gauges are sampled values (emitted on
// change or on a heartbeat so flat series stay cheap but never vanish),
// and histograms become bucket-count deltas (mergeable vectors that keep
// windowed quantiles exact under downsampling).  The first tick for any
// series only establishes its baseline — nothing is emitted — which is
// what keeps restart boundaries spike-free in stored counter history.
//
// The snapshot-diff runs off the hot path: Observe/Add/Set sites are
// untouched (still lock-free, zero-alloc), and one tick costs well under
// a millisecond at the repo's family count (BenchmarkSamplerSampleOnce
// proves it).
package tsdb

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// gaugeHeartbeat bounds how long an unchanged gauge goes unsampled.
const gaugeHeartbeat = time.Minute

// prevState is one series' diff baseline between ticks.
type prevState struct {
	id   uint32
	seen bool

	value    float64 // counter or gauge reading at the last tick
	lastEmit time.Time

	counts [telemetry.NumBuckets]int64
	sum    float64
}

// Sampler feeds a Store from a Registry.  Construct with NewSampler,
// start with Run (one goroutine), stop with Stop; SampleOnce is exported
// for tests and benchmarks.
type Sampler struct {
	reg      *telemetry.Registry
	store    *Store
	interval time.Duration

	mu   sync.Mutex
	prev map[string]*prevState

	// onSample, when set, observes every non-empty tick after it is
	// stored (the anomaly detector's feed).
	onSample func(ts time.Time, samples []Sample)

	boundIdx map[float64]int

	durH *telemetry.Histogram

	stopOnce sync.Once
	stopc    chan struct{}
	done     chan struct{}
	// running flips when Run enters its loop; Stop only waits for done
	// when a Run is actually draining (callers that drive SampleOnce by
	// hand never close done).
	running atomic.Bool
}

// NewSampler builds a sampler that ticks every interval (minimum 100ms;
// zero takes 5s).  The store's Metrics registry (not reg) receives the
// tsdb_sample_ns self-timing histogram when configured.
func NewSampler(reg *telemetry.Registry, store *Store, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	bi := make(map[float64]int, telemetry.NumBuckets)
	for i := 0; i < telemetry.NumBuckets; i++ {
		bi[telemetry.BucketUpperBound(i)] = i
	}
	return &Sampler{
		reg:      reg,
		store:    store,
		interval: interval,
		prev:     map[string]*prevState{},
		boundIdx: bi,
		durH:     store.cfg.Metrics.Histogram("tsdb_sample_ns", "Wall time of one sampler snapshot-diff tick, nanoseconds."),
		stopc:    make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// OnSample registers a hook observing each stored tick (at most one; the
// anomaly detector uses it).  Must be called before Run.
func (sp *Sampler) OnSample(f func(ts time.Time, samples []Sample)) {
	sp.onSample = f
}

// Run ticks until Stop; call in a dedicated goroutine.
func (sp *Sampler) Run() {
	defer close(sp.done)
	sp.running.Store(true)
	t := time.NewTicker(sp.interval)
	defer t.Stop()
	for {
		select {
		case <-sp.stopc:
			return
		case now := <-t.C:
			sp.SampleOnce(now)
		}
	}
}

// Stop ends Run and waits for the in-flight tick to finish.  Safe to
// call more than once, and safe when Run was never started (it then
// just marks the sampler stopped).
func (sp *Sampler) Stop() {
	sp.stopOnce.Do(func() { close(sp.stopc) })
	if sp.running.Load() {
		<-sp.done
	}
}

// SampleOnce performs one snapshot-diff tick at now, appending the
// resulting samples to the store.  It returns the number of samples
// emitted.  Exported for tests, benchmarks, and callers that want a
// final flush before shutdown.
func (sp *Sampler) SampleOnce(now time.Time) int {
	start := time.Now()
	snap := sp.reg.SnapshotAt(now)
	sp.mu.Lock()
	defer sp.mu.Unlock()

	var samples []Sample
	for i := range snap.Metrics {
		m := &snap.Metrics[i]
		key := metricKey(m)
		st := sp.prev[key]
		if st == nil {
			st = &prevState{id: sp.store.SeriesID(seriesOf(m))}
			sp.prev[key] = st
		}
		switch m.Kind {
		case "counter":
			v := 0.0
			if m.Value != nil {
				v = *m.Value
			}
			if !st.seen {
				st.seen, st.value = true, v
				continue
			}
			delta := v - st.value
			st.value = v
			if delta < 0 { // reset: re-baseline from the new value
				delta = v
			}
			if delta == 0 {
				continue
			}
			samples = append(samples, Sample{SeriesID: st.id, Point: Point{Count: 1, Min: delta, Max: delta, Sum: delta}})
		case "gauge":
			v := 0.0
			if m.Value != nil {
				v = *m.Value
			}
			if st.seen && v == st.value && now.Sub(st.lastEmit) < gaugeHeartbeat {
				continue
			}
			st.seen, st.value, st.lastEmit = true, v, now
			samples = append(samples, Sample{SeriesID: st.id, Point: Point{Count: 1, Min: v, Max: v, Sum: v}})
		case "histogram":
			var p Point
			changed := false
			var cur [telemetry.NumBuckets]int64
			for _, b := range m.Buckets {
				idx, ok := sp.boundIdx[b.UpperBound]
				if !ok {
					idx = telemetry.NumBuckets - 1
				}
				cur[idx] += b.Count
			}
			for j := 0; j < telemetry.NumBuckets; j++ {
				d := cur[j] - st.counts[j]
				if d != 0 {
					p.HBuckets[j] = d
					p.HCount += d
					changed = true
				}
			}
			p.HSum = m.Sum - st.sum
			if !st.seen {
				st.seen = true
				st.counts, st.sum = cur, m.Sum
				continue
			}
			st.counts, st.sum = cur, m.Sum
			if !changed {
				continue
			}
			samples = append(samples, Sample{SeriesID: st.id, Point: p})
		}
	}
	if len(samples) > 0 {
		if err := sp.store.Append(now, samples); err != nil {
			sp.store.cfg.Logf("tsdb: sampler append: %v", err)
		} else if sp.onSample != nil {
			sp.onSample(now, samples)
		}
	}
	sp.durH.Observe(float64(time.Since(start).Nanoseconds()))
	return len(samples)
}

// metricKey is the diff-state map key for one snapshot metric.
func metricKey(m *telemetry.Metric) string {
	if len(m.Labels) == 0 {
		return m.Name
	}
	keys := make([]string, 0, len(m.Labels))
	for k := range m.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := make([]byte, 0, 64)
	b = append(b, m.Name...)
	for _, k := range keys {
		b = append(b, '|')
		b = append(b, k...)
		b = append(b, '=')
		b = append(b, m.Labels[k]...)
	}
	return string(b)
}

// seriesOf builds the store identity of one snapshot metric.
func seriesOf(m *telemetry.Metric) Series {
	s := Series{Family: m.Name}
	switch m.Kind {
	case "counter":
		s.Kind = telemetry.KindCounter
	case "gauge":
		s.Kind = telemetry.KindGauge
	case "histogram":
		s.Kind = telemetry.KindHistogram
	}
	for k, v := range m.Labels {
		s.Labels = append(s.Labels, telemetry.L(k, v))
	}
	sort.Slice(s.Labels, func(i, j int) bool { return s.Labels[i].Key < s.Labels[j].Key })
	return s
}
