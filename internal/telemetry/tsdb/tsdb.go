// Package tsdb is the embedded metric time-series store: the layer that
// turns the registry's point-in-time snapshots into on-disk history that
// survives restarts.  A Sampler goroutine diffs periodic snapshots into
// per-interval aggregate samples; the Store appends them to CRC32C-checked
// chunk files (see chunk.go) at three resolutions — raw (every sampler
// tick), 1m and 10m — by folding raw samples into coarser windows as they
// arrive.  Because every stored point is an aggregate (min/max/sum/count
// for scalars, mergeable bucket vectors for histograms), downsampling is
// pure summation and windowed quantiles computed from a 10m point agree
// exactly with the same window recomputed from raw points.
//
// The Store follows the framelog durability discipline: appends land in
// the OS page cache per batch, chunks seal with a summary footer on
// rotation and clean close, and Open scans any unsealed chunk record by
// record, truncating a torn tail and sealing what survived — so history
// is continuous across SIGKILL.  A retention janitor deletes sealed
// chunks wholly older than the per-resolution horizon, giving dense
// recent history and sparse long history in bounded space.
package tsdb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Resolution names accepted by queries and used as subdirectory names.
const (
	// ResRaw is the sampler-tick resolution level.
	ResRaw = "raw"
	// Res1m is the one-minute downsampled level.
	Res1m = "1m"
	// Res10m is the ten-minute downsampled level.
	Res10m = "10m"
)

// Config parameterizes a Store.
type Config struct {
	// Dir is the store's root directory; per-resolution chunk files live
	// in raw/, 1m/ and 10m/ beneath it.  Created if missing.
	Dir string

	// RetainRaw, Retain1m and Retain10m bound how far back each
	// resolution keeps data; sealed chunks wholly older are deleted by
	// the janitor.  Zero values take the defaults (2h, 26h, 8d).
	RetainRaw time.Duration
	Retain1m  time.Duration
	Retain10m time.Duration

	// MaxChunkBatches, MaxChunkBytes and MaxChunkAge trigger rotation of
	// the active chunk (whichever trips first).  Zero values take the
	// defaults (4096 batches, 4 MiB, 30 min).
	MaxChunkBatches int
	MaxChunkBytes   int64
	MaxChunkAge     time.Duration

	// Metrics receives the store's own tsdb_* instrumentation (nil is a
	// no-op, like everywhere else in the telemetry layer).
	Metrics *telemetry.Registry

	// Logf reports recovery and janitor activity (nil discards).
	Logf func(format string, args ...any)
}

// DefaultConfig returns the production configuration for a store rooted
// at dir.
func DefaultConfig(dir string) Config {
	return Config{Dir: dir}
}

func (c *Config) fill() {
	if c.RetainRaw <= 0 {
		c.RetainRaw = 2 * time.Hour
	}
	if c.Retain1m <= 0 {
		c.Retain1m = 26 * time.Hour
	}
	if c.Retain10m <= 0 {
		c.Retain10m = 8 * 24 * time.Hour
	}
	if c.MaxChunkBatches <= 0 {
		c.MaxChunkBatches = 4096
	}
	if c.MaxChunkBytes <= 0 {
		c.MaxChunkBytes = 4 << 20
	}
	if c.MaxChunkAge <= 0 {
		c.MaxChunkAge = 30 * time.Minute
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// janitorInterval is how often an appending store re-checks retention.
const janitorInterval = time.Minute

// level is one resolution's write state: its directory, the active chunk
// (nil between rotations), and — for downsampled levels — the pending
// aggregate window being folded from raw appends.
type level struct {
	name   string
	dir    string
	window time.Duration // 0 for raw
	retain time.Duration

	w *chunkWriter

	agg      map[uint32]*Point
	aggStart int64

	sealed  *telemetry.Counter
	deleted *telemetry.Counter
	batches *telemetry.Counter
}

// Store is the embedded time-series store.  One goroutine appends (the
// Sampler); any number of goroutines may Query concurrently — queries
// read chunk files through independent descriptors and stop cleanly at
// the active chunk's flushed frontier.
type Store struct {
	cfg Config

	mu     sync.Mutex
	closed bool
	levels [3]*level

	ids    map[string]uint32
	series []Series

	lastJanitor time.Time

	samplesC *telemetry.Counter
	seriesG  *telemetry.Gauge
}

// Open creates or reopens a store rooted at cfg.Dir, recovering any
// chunk left unsealed by a crash: the torn tail (if any) is truncated and
// the surviving prefix sealed, so the new process appends to fresh chunks
// only and history spans the restart.
func Open(cfg Config) (*Store, error) {
	cfg.fill()
	if cfg.Dir == "" {
		return nil, errors.New("tsdb: Config.Dir is required")
	}
	s := &Store{
		cfg: cfg,
		ids: map[string]uint32{},

		samplesC: cfg.Metrics.Counter("tsdb_samples_total", "Samples appended to the raw resolution level."),
		seriesG:  cfg.Metrics.Gauge("tsdb_series", "Distinct time series tracked by the store this process lifetime."),
	}
	defs := []struct {
		name   string
		window time.Duration
		retain time.Duration
	}{
		{ResRaw, 0, cfg.RetainRaw},
		{Res1m, time.Minute, cfg.Retain1m},
		{Res10m, 10 * time.Minute, cfg.Retain10m},
	}
	for i, d := range defs {
		lv := &level{
			name:   d.name,
			dir:    filepath.Join(cfg.Dir, d.name),
			window: d.window,
			retain: d.retain,
			agg:    map[uint32]*Point{},

			sealed:  cfg.Metrics.Counter("tsdb_chunks_sealed_total", "Chunks sealed, by resolution.", telemetry.L("res", d.name)),
			deleted: cfg.Metrics.Counter("tsdb_chunks_deleted_total", "Chunks deleted by the retention janitor, by resolution.", telemetry.L("res", d.name)),
			batches: cfg.Metrics.Counter("tsdb_batches_total", "Sample batches appended, by resolution.", telemetry.L("res", d.name)),
		}
		if err := os.MkdirAll(lv.dir, 0o755); err != nil {
			return nil, err
		}
		if err := s.recoverLevel(lv); err != nil {
			return nil, err
		}
		s.levels[i] = lv
	}
	return s, nil
}

// recoverLevel seals (or removes, when empty) every unsealed chunk in a
// level directory.
func (s *Store) recoverLevel(lv *level) error {
	names, err := listChunkFiles(lv.dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		path := filepath.Join(lv.dir, name)
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		fi, statErr := f.Stat()
		var ft *chunkFooter
		if statErr == nil {
			ft, err = probeChunkFooter(f, fi.Size())
		}
		f.Close()
		if statErr != nil {
			return statErr
		}
		if err != nil {
			return err
		}
		if ft != nil {
			continue // sealed: trust the footer
		}
		res, err := scanChunk(path, nil)
		if err != nil {
			s.cfg.Logf("tsdb: dropping unreadable chunk %s: %v", path, err)
			if err := os.Remove(path); err != nil {
				return err
			}
			continue
		}
		if res.batches == 0 {
			s.cfg.Logf("tsdb: removing empty unsealed chunk %s", path)
			if err := os.Remove(path); err != nil {
				return err
			}
			continue
		}
		s.cfg.Logf("tsdb: recovered %s: sealed %d batches (%d samples), truncated torn tail",
			path, res.batches, res.samples)
		if err := sealExisting(path, res); err != nil {
			return err
		}
		lv.sealed.Add(1)
	}
	return nil
}

// SeriesID interns a series identity, returning the id Append samples
// must carry.  Ids are stable for the store's lifetime (chunks re-declare
// them on disk, so they need not survive restarts).
func (s *Store) SeriesID(sr Series) uint32 {
	key := sr.Key()
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.ids[key]; ok {
		return id
	}
	id := uint32(len(s.series))
	s.ids[key] = id
	// Copy labels so callers can reuse their slices.
	cp := sr
	cp.Labels = append([]telemetry.Label(nil), sr.Labels...)
	s.series = append(s.series, cp)
	s.seriesG.Set(float64(len(s.series)))
	return id
}

// lookupSeries resolves an id under s.mu.
func (s *Store) lookupSeries(id uint32) (Series, bool) {
	if int(id) >= len(s.series) {
		return Series{}, false
	}
	return s.series[id], true
}

// Append stores one sampler tick: the batch lands in the raw level
// immediately and folds into each downsampled level's pending window,
// flushing completed windows as their boundaries are crossed.  Samples
// must carry ids from SeriesID.  Append is not safe for concurrent use
// with itself or Close (one sampler owns it); it is safe alongside Query.
func (s *Store) Append(ts time.Time, samples []Sample) error {
	if s == nil || len(samples) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("tsdb: store is closed")
	}
	tsn := ts.UnixNano()
	if err := s.appendLevel(s.levels[0], tsn, samples); err != nil {
		return err
	}
	s.samplesC.Add(int64(len(samples)))
	for _, lv := range s.levels[1:] {
		ws := tsn - tsn%int64(lv.window)
		if lv.aggStart != ws && len(lv.agg) > 0 {
			if err := s.flushAggLocked(lv); err != nil {
				return err
			}
		}
		lv.aggStart = ws
		for i := range samples {
			sm := &samples[i]
			p := lv.agg[sm.SeriesID]
			if p == nil {
				p = &Point{}
				lv.agg[sm.SeriesID] = p
			}
			sr, _ := s.lookupSeries(sm.SeriesID)
			p.merge(&sm.Point, sr.Kind)
		}
	}
	if time.Since(s.lastJanitor) >= janitorInterval {
		s.lastJanitor = time.Now()
		s.janitorLocked()
	}
	return nil
}

// appendLevel writes one batch into a level, opening or rotating its
// active chunk as needed.
func (s *Store) appendLevel(lv *level, tsn int64, samples []Sample) error {
	if lv.w != nil {
		age := time.Duration(tsn - lv.w.firstTs)
		if int(lv.w.batches) >= s.cfg.MaxChunkBatches ||
			lv.w.bytes >= s.cfg.MaxChunkBytes ||
			age >= s.cfg.MaxChunkAge {
			if err := lv.w.seal(); err != nil {
				return err
			}
			lv.sealed.Add(1)
			lv.w = nil
		}
	}
	if lv.w == nil {
		w, err := createChunkAt(lv.dir, tsn)
		if err != nil {
			return err
		}
		lv.w = w
	}
	if err := lv.w.appendBatch(tsn, samples, s.lookupSeries); err != nil {
		return err
	}
	lv.batches.Add(1)
	return nil
}

// createChunkAt creates a chunk named for ts, bumping the stamp past any
// name collision (possible when a recovered chunk shares the nanosecond).
func createChunkAt(dir string, ts int64) (*chunkWriter, error) {
	for i := 0; i < 1024; i++ {
		w, err := createChunk(dir, ts+int64(i))
		if err == nil {
			return w, nil
		}
		if !os.IsExist(err) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("tsdb: cannot find a free chunk name near %d in %s", ts, dir)
}

// flushAggLocked writes a downsampled level's pending window as one batch
// stamped at the window start, then clears the pending state.
func (s *Store) flushAggLocked(lv *level) error {
	ids := make([]uint32, 0, len(lv.agg))
	for id := range lv.agg {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	batch := make([]Sample, 0, len(ids))
	for _, id := range ids {
		batch = append(batch, Sample{SeriesID: id, Point: *lv.agg[id]})
	}
	if err := s.appendLevel(lv, lv.aggStart, batch); err != nil {
		return err
	}
	for id := range lv.agg {
		delete(lv.agg, id)
	}
	return nil
}

// janitorLocked deletes sealed chunks wholly older than each level's
// retention horizon.  The active chunk is never considered.
func (s *Store) janitorLocked() {
	now := time.Now()
	for _, lv := range s.levels {
		names, err := listChunkFiles(lv.dir)
		if err != nil {
			s.cfg.Logf("tsdb: janitor list %s: %v", lv.dir, err)
			continue
		}
		horizon := now.Add(-lv.retain).UnixNano()
		for _, name := range names {
			path := filepath.Join(lv.dir, name)
			if lv.w != nil && path == lv.w.path {
				continue
			}
			f, err := os.Open(path)
			if err != nil {
				continue
			}
			fi, statErr := f.Stat()
			var ft *chunkFooter
			if statErr == nil {
				ft, _ = probeChunkFooter(f, fi.Size())
			}
			f.Close()
			if ft == nil || ft.lastTs >= horizon {
				continue
			}
			if err := os.Remove(path); err != nil {
				s.cfg.Logf("tsdb: janitor remove %s: %v", path, err)
				continue
			}
			lv.deleted.Add(1)
			s.cfg.Logf("tsdb: retention deleted %s/%s (last sample %s old)",
				lv.name, name, now.Sub(time.Unix(0, ft.lastTs)).Round(time.Second))
		}
	}
}

// Close flushes pending downsample windows (as partial aggregates — they
// merge correctly with a post-restart partial covering the same window)
// and seals every active chunk.  The store rejects appends afterwards;
// queries against the directory remain valid.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for _, lv := range s.levels[1:] {
		if len(lv.agg) > 0 {
			if err := s.flushAggLocked(lv); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	for _, lv := range s.levels {
		if lv.w == nil {
			continue
		}
		if err := lv.w.seal(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			lv.sealed.Add(1)
		}
		lv.w = nil
	}
	return firstErr
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.cfg.Dir }

// levelByName maps a resolution name to its level, nil when unknown.
func (s *Store) levelByName(name string) *level {
	for _, lv := range s.levels {
		if lv.name == name {
			return lv
		}
	}
	return nil
}

// pickResolution chooses the finest resolution whose retention horizon
// still covers since ("auto" behaviour); an explicit name wins.
func (s *Store) pickResolution(name string, since time.Time) (*level, error) {
	if name != "" && name != "auto" {
		lv := s.levelByName(name)
		if lv == nil {
			return nil, fmt.Errorf("tsdb: unknown resolution %q", name)
		}
		return lv, nil
	}
	age := time.Since(since)
	switch {
	case age <= s.cfg.RetainRaw:
		return s.levels[0], nil
	case age <= s.cfg.Retain1m:
		return s.levels[1], nil
	default:
		return s.levels[2], nil
	}
}
