package tsdb

import (
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// testStore opens a store in a fresh temp dir with tiny rotation limits.
func testStore(t *testing.T, mutate func(*Config)) *Store {
	t.Helper()
	cfg := DefaultConfig(t.TempDir())
	cfg.Logf = t.Logf
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// TestChunkRoundTrip appends batches across rotations and reads every
// sample back bit-exact through a fresh store's query path.
func TestChunkRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig(dir)
	cfg.MaxChunkBatches = 8 // force rotations
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	base := time.Now().Add(-10 * time.Minute).Truncate(time.Second)
	gid := s.SeriesID(Series{Family: "g", Kind: telemetry.KindGauge})
	cid := s.SeriesID(Series{Family: "c", Kind: telemetry.KindCounter, Labels: []telemetry.Label{telemetry.L("path", "cpu")}})
	hid := s.SeriesID(Series{Family: "h", Kind: telemetry.KindHistogram})
	const n = 50
	for i := 0; i < n; i++ {
		ts := base.Add(time.Duration(i) * time.Second)
		gv := math.Sin(float64(i) / 3)
		var hp Point
		hp.HCount = int64(i%3 + 1)
		hp.HSum = float64(i) * 1.5
		hp.HBuckets[i%telemetry.NumBuckets] = hp.HCount
		err := s.Append(ts, []Sample{
			{SeriesID: gid, Point: Point{Count: 1, Min: gv, Max: gv, Sum: gv}},
			{SeriesID: cid, Point: Point{Count: 1, Min: 2, Max: 2, Sum: 2}},
			{SeriesID: hid, Point: hp},
		})
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Multiple chunks must exist after forced rotation.
	names, err := listChunkFiles(filepath.Join(dir, ResRaw))
	if err != nil || len(names) < 2 {
		t.Fatalf("want >=2 raw chunks, got %d (%v)", len(names), err)
	}

	q, err := Open(DefaultConfig(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer q.Close()
	res, err := q.Query(QueryOptions{
		Family:     "g",
		Since:      base.Add(-time.Second),
		Until:      base.Add(n * time.Second),
		Step:       time.Second,
		Resolution: ResRaw,
	})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Series) != 1 {
		t.Fatalf("want 1 gauge series, got %d", len(res.Series))
	}
	pts := res.Series[0].Points
	if len(pts) != n {
		t.Fatalf("want %d gauge points, got %d", n, len(pts))
	}
	for i, p := range pts {
		want := math.Sin(float64(i) / 3)
		if p.Value != want {
			t.Fatalf("point %d: value %v != %v (XOR round-trip must be bit-exact)", i, p.Value, want)
		}
	}

	// Counter: each step holds one 2.0 increase.
	res, err = q.Query(QueryOptions{
		Family: "c", Since: base.Add(-time.Second), Until: base.Add(n * time.Second),
		Step: time.Second, Resolution: ResRaw,
	})
	if err != nil {
		t.Fatalf("counter query: %v", err)
	}
	if len(res.Series) != 1 || res.Series[0].Labels["path"] != "cpu" {
		t.Fatalf("counter series/labels wrong: %+v", res.Series)
	}
	for i, p := range res.Series[0].Points {
		if p.Value != 2 {
			t.Fatalf("counter step %d: increase %v != 2", i, p.Value)
		}
	}

	// Histogram: whole-range quantile over merged buckets is computable.
	res, err = q.Query(QueryOptions{
		Family: "h", Since: base, Until: base.Add(n * time.Second),
		Step: n * time.Second, Quantile: 0.99, Resolution: ResRaw,
	})
	if err != nil {
		t.Fatalf("histogram query: %v", err)
	}
	if len(res.Series) != 1 || len(res.Series[0].Points) != 1 {
		t.Fatalf("histogram result shape wrong: %+v", res)
	}
	if res.Series[0].Points[0].Count == 0 || res.Series[0].Points[0].Value <= 0 {
		t.Fatalf("histogram quantile point empty: %+v", res.Series[0].Points[0])
	}
}

// TestReopenTruncatesTornTail simulates a SIGKILL by corrupting the tail
// of an unsealed chunk: reopen must keep every intact batch, drop the
// torn one, and continue appending into a fresh chunk so history spans
// the "restart".
func TestReopenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(DefaultConfig(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	base := time.Now().Add(-5 * time.Minute).Truncate(time.Second)
	id := s.SeriesID(Series{Family: "g", Kind: telemetry.KindGauge})
	for i := 0; i < 10; i++ {
		v := float64(i)
		if err := s.Append(base.Add(time.Duration(i)*time.Second), []Sample{{SeriesID: id, Point: Point{Count: 1, Min: v, Max: v, Sum: v}}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// Abandon without sealing (crash), then tear the last record.
	s.mu.Lock()
	raw := s.levels[0]
	path := raw.w.path
	if err := raw.w.abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
	raw.w = nil
	s.closed = true
	s.mu.Unlock()

	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	r, err := Open(DefaultConfig(dir))
	if err != nil {
		t.Fatalf("reopen after tear: %v", err)
	}
	// The recovered chunk must now be sealed with 9 intact batches.
	res, err := scanChunk(path, nil)
	if err != nil {
		t.Fatalf("scan recovered chunk: %v", err)
	}
	if !res.sealed || res.batches != 9 {
		t.Fatalf("recovered chunk: sealed=%v batches=%d, want sealed with 9", res.sealed, res.batches)
	}
	// Appends continue in a new chunk; the query spans both lifetimes.
	id2 := r.SeriesID(Series{Family: "g", Kind: telemetry.KindGauge})
	for i := 10; i < 15; i++ {
		v := float64(i)
		if err := r.Append(base.Add(time.Duration(i)*time.Second), []Sample{{SeriesID: id2, Point: Point{Count: 1, Min: v, Max: v, Sum: v}}}); err != nil {
			t.Fatalf("post-recovery Append: %v", err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	q, err := Open(DefaultConfig(dir))
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	defer q.Close()
	out, err := q.Query(QueryOptions{
		Family: "g", Since: base.Add(-time.Second), Until: base.Add(20 * time.Second),
		Step: time.Second, Resolution: ResRaw,
	})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(out.Series) != 1 {
		t.Fatalf("want 1 series, got %d", len(out.Series))
	}
	if got := len(out.Series[0].Points); got != 14 { // 9 recovered + 5 new
		t.Fatalf("want 14 points across the restart, got %d", got)
	}
}

// TestDownsampleQuantileAgreement is the downsampled-vs-raw golden: over
// aligned windows, a histogram quantile computed from the 1m level must
// equal the same window recomputed from raw points, because bucket-merge
// downsampling is lossless for bucketed quantiles.
func TestDownsampleQuantileAgreement(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(DefaultConfig(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Aligned to a 10-minute boundary so 1m windows fill deterministically.
	base := time.Now().Add(-30 * time.Minute).Truncate(10 * time.Minute)
	id := s.SeriesID(Series{Family: "lat", Kind: telemetry.KindHistogram})
	// 10 minutes of 5s ticks with a shifting latency distribution.
	for i := 0; i < 120; i++ {
		ts := base.Add(time.Duration(i) * 5 * time.Second)
		var p Point
		for j := 0; j < 20; j++ {
			b := (i/12 + j%7) % telemetry.NumBuckets
			p.HBuckets[b]++
			p.HCount++
			p.HSum += telemetry.BucketUpperBound(b)
		}
		if err := s.Append(ts, []Sample{{SeriesID: id, Point: p}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	q, err := Open(DefaultConfig(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer q.Close()
	since, until := base, base.Add(10*time.Minute)
	for _, quant := range []float64{0.5, 0.95, 0.99} {
		raw, err := q.Query(QueryOptions{Family: "lat", Since: since, Until: until,
			Step: time.Minute, Quantile: quant, Resolution: ResRaw})
		if err != nil {
			t.Fatalf("raw query: %v", err)
		}
		ds, err := q.Query(QueryOptions{Family: "lat", Since: since, Until: until,
			Step: time.Minute, Quantile: quant, Resolution: Res1m})
		if err != nil {
			t.Fatalf("1m query: %v", err)
		}
		if len(raw.Series) != 1 || len(ds.Series) != 1 {
			t.Fatalf("series count: raw %d, 1m %d", len(raw.Series), len(ds.Series))
		}
		rp, dp := raw.Series[0].Points, ds.Series[0].Points
		if len(dp) == 0 {
			t.Fatalf("no downsampled points")
		}
		byT := map[int64]QueryPoint{}
		for _, p := range rp {
			byT[p.T] = p
		}
		for _, p := range dp {
			r, ok := byT[p.T]
			if !ok {
				t.Fatalf("q%.2f: 1m point at t=%d has no raw counterpart", quant, p.T)
			}
			if r.Value != p.Value || r.Count != p.Count {
				t.Fatalf("q%.2f at t=%d: raw (%v, %d) != 1m (%v, %d)",
					quant, p.T, r.Value, r.Count, p.Value, p.Count)
			}
		}
	}
}

// TestRetentionJanitor proves sealed chunks wholly older than the horizon
// are deleted and newer ones survive.
func TestRetentionJanitor(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig(dir)
	cfg.MaxChunkBatches = 4
	cfg.RetainRaw = time.Hour
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	id := s.SeriesID(Series{Family: "g", Kind: telemetry.KindGauge})
	old := time.Now().Add(-3 * time.Hour)
	for i := 0; i < 8; i++ { // two sealed old chunks
		if err := s.Append(old.Add(time.Duration(i)*time.Second), []Sample{{SeriesID: id, Point: Point{Count: 1, Sum: 1, Min: 1, Max: 1}}}); err != nil {
			t.Fatalf("Append old: %v", err)
		}
	}
	recent := time.Now().Add(-time.Minute)
	for i := 0; i < 8; i++ {
		if err := s.Append(recent.Add(time.Duration(i)*time.Second), []Sample{{SeriesID: id, Point: Point{Count: 1, Sum: 1, Min: 1, Max: 1}}}); err != nil {
			t.Fatalf("Append recent: %v", err)
		}
	}
	s.mu.Lock()
	s.janitorLocked()
	s.mu.Unlock()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	names, err := listChunkFiles(filepath.Join(dir, ResRaw))
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	for _, n := range names {
		ts, _ := parseChunkName(n)
		if time.Since(time.Unix(0, ts)) > 2*time.Hour {
			t.Fatalf("janitor left expired chunk %s", n)
		}
	}
	if len(names) == 0 {
		t.Fatalf("janitor deleted everything")
	}
}

// TestSamplerDiff exercises the snapshot-diff semantics: baselines on the
// first tick, per-interval counter increases, gauge change/heartbeat
// gating, histogram bucket deltas.
func TestSamplerDiff(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := testStore(t, nil)
	defer s.Close()
	sp := NewSampler(reg, s, time.Second)

	c := reg.Counter("req_total", "")
	g := reg.Gauge("depth", "")
	h := reg.Histogram("lat_ns", "")

	now := time.Now().Add(-time.Minute)
	c.Add(5)
	g.Set(3)
	h.Observe(100)
	// Counters and histograms only baseline on the first tick; the gauge
	// emits immediately (it is a point sample, not a diff).
	if n := sp.SampleOnce(now); n != 1 {
		t.Fatalf("first tick: want only the gauge sample, emitted %d", n)
	}
	c.Add(2)
	h.Observe(200)
	h.Observe(300)
	if n := sp.SampleOnce(now.Add(time.Second)); n == 0 {
		t.Fatalf("second tick emitted nothing")
	}
	// Unchanged gauge + idle counter within heartbeat: nothing to say.
	if n := sp.SampleOnce(now.Add(2 * time.Second)); n != 0 {
		t.Fatalf("idle tick emitted %d samples", n)
	}

	res, err := s.Query(QueryOptions{Family: "req_total", Since: now.Add(-time.Second),
		Until: now.Add(10 * time.Second), Step: 20 * time.Second, Resolution: ResRaw})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Series) != 1 || res.Series[0].Points[0].Value != 2 {
		t.Fatalf("counter increase: want one series with value 2, got %+v", res.Series)
	}
	res, err = s.Query(QueryOptions{Family: "lat_ns", Since: now.Add(-time.Second),
		Until: now.Add(10 * time.Second), Step: 20 * time.Second, Resolution: ResRaw})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Series) != 1 || res.Series[0].Points[0].Count != 2 {
		t.Fatalf("histogram delta: want 2 new observations, got %+v", res.Series)
	}
}

// TestHistoryHandler exercises the HTTP surface end to end, including
// the nil-store 404 contract and parameter validation.
func TestHistoryHandler(t *testing.T) {
	var nilStore *Store
	rr := httptest.NewRecorder()
	nilStore.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics/history?family=x", nil))
	if rr.Code != 404 {
		t.Fatalf("nil store: want 404, got %d", rr.Code)
	}

	reg := telemetry.NewRegistry()
	s := testStore(t, nil)
	defer s.Close()
	sp := NewSampler(reg, s, time.Second)
	g := reg.Gauge("acq_queue_depth", "", telemetry.L("shard", "0"))
	base := time.Now().Add(-time.Minute)
	for i := 0; i < 5; i++ {
		g.Set(float64(i))
		sp.SampleOnce(base.Add(time.Duration(i) * time.Second))
	}

	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics/history?family=acq_queue_depth&match=shard=0&since=-5m&step=1s&res=raw", nil))
	if rr.Code != 200 {
		t.Fatalf("query: %d %s", rr.Code, rr.Body.String())
	}
	body := rr.Body.String()
	for _, want := range []string{`"family": "acq_queue_depth"`, `"kind": "gauge"`, `"shard": "0"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("response missing %q:\n%s", want, body)
		}
	}

	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics/history", nil))
	if rr.Code != 400 {
		t.Fatalf("missing family: want 400, got %d", rr.Code)
	}
	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics/history?family=x&quantile=1.5", nil))
	if rr.Code != 400 {
		t.Fatalf("bad quantile: want 400, got %d", rr.Code)
	}
}
