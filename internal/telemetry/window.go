// window.go: rolling-window views of a Histogram — a rotating ring of
// cumulative bucket snapshots from which "last N seconds" counts are
// derived by subtraction.  The Observe hot path never touches the ring
// (rotation happens only at read time, under a mutex nothing hot ever
// takes), so the lock-free, zero-allocation Observe contract of
// histogram.go is preserved bit for bit.
package telemetry

import (
	"sync"
	"time"
)

// WindowSlotDuration is the minimum spacing between two ring snapshots: a
// read-side rotation is a no-op until the newest slot is at least this
// old.  Windows are therefore resolved to ~10 s granularity.
const WindowSlotDuration = 10 * time.Second

// WindowSlots is the ring capacity.  64 slots at 10 s spacing retain a
// little over ten minutes of history — enough for the slow (10 m) burn
// window of internal/telemetry/health on top of the exported 60 s view.
const WindowSlots = 64

// ExportWindow is the rolling window reported by Snapshot exports (the
// wcount/wp50/wp95/wp99 JSON fields and the *_window_* Prometheus
// series): the last minute, to slot granularity.
const ExportWindow = 60 * time.Second

// windowSlot is one ring entry: the histogram's cumulative bucket counts
// as of a rotation instant.
type windowSlot struct {
	when   time.Time
	counts [NumBuckets]int64
}

// histWindow is the rotation ring.  Its zero value is ready to use (an
// empty ring), keeping the zero Histogram usable.  Only read-side paths
// (Snapshot, WindowCounts, health evaluation) take the mutex.
type histWindow struct {
	mu    sync.Mutex
	n     int // valid slots, ≤ WindowSlots
	head  int // index of the most recent slot (meaningless while n == 0)
	slots [WindowSlots]windowSlot
}

// rotateLocked pushes a snapshot of h's cumulative state if the newest
// slot is at least WindowSlotDuration old (or the ring is empty).  The
// caller holds h.win.mu.
func (h *Histogram) rotateLocked(now time.Time) {
	w := &h.win
	if w.n > 0 {
		age := now.Sub(w.slots[w.head].when)
		if age < WindowSlotDuration {
			return // newest slot is fresh enough (or the clock went backwards)
		}
	}
	idx := 0
	if w.n > 0 {
		idx = (w.head + 1) % WindowSlots
	}
	s := &w.slots[idx]
	s.when = now
	for i := range h.buckets {
		s.counts[i] = h.buckets[i].Load()
	}
	w.head = idx
	if w.n < WindowSlots {
		w.n++
	}
}

// baselineLocked returns the ring slot closest to (now − window) from
// below — the newest snapshot old enough to cover the requested window —
// falling back to the oldest slot when the ring is younger than the
// window.  It returns nil on an empty ring.  The caller holds h.win.mu.
func (h *Histogram) baselineLocked(now time.Time, window time.Duration) *windowSlot {
	w := &h.win
	if w.n == 0 {
		return nil
	}
	cutoff := now.Add(-window)
	for i := 0; i < w.n; i++ {
		j := (w.head - i + WindowSlots) % WindowSlots
		if !w.slots[j].when.After(cutoff) {
			return &w.slots[j]
		}
	}
	oldest := (w.head - (w.n - 1) + WindowSlots) % WindowSlots
	return &w.slots[oldest]
}

// WindowCounts returns the per-bucket observation counts over
// approximately the trailing window ending at now, together with the
// duration the returned counts actually cover (the age of the baseline
// snapshot used — shorter than window while history is still
// accumulating, 0 when no history exists yet).  Calling it also advances
// the rotation ring, so any periodic reader (a scrape, the health
// evaluator, the ops console) keeps windows fresh for everyone.  A nil
// receiver returns zero counts and 0.
func (h *Histogram) WindowCounts(now time.Time, window time.Duration) (counts [NumBuckets]int64, covered time.Duration) {
	if h == nil {
		return counts, 0
	}
	h.win.mu.Lock()
	h.rotateLocked(now)
	basep := h.baselineLocked(now, window)
	if basep == nil {
		h.win.mu.Unlock()
		return counts, 0
	}
	base := *basep // copy before unlocking: a later rotation may reuse the slot
	h.win.mu.Unlock()
	for i := range h.buckets {
		d := h.buckets[i].Load() - base.counts[i]
		if d < 0 {
			d = 0 // snapshot raced a concurrent Observe; clamp, never go negative
		}
		counts[i] = d
	}
	covered = now.Sub(base.when)
	if covered < 0 {
		covered = 0
	}
	return counts, covered
}

// WindowQuantile estimates the q-quantile of the observations in the
// trailing window ending at now (see Quantile for the estimation
// contract).  It returns 0 when the window is empty or the receiver nil.
func (h *Histogram) WindowQuantile(now time.Time, window time.Duration, q float64) float64 {
	counts, _ := h.WindowCounts(now, window)
	return QuantileOfCounts(counts, q)
}
