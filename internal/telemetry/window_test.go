package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// t0 is an arbitrary fixed instant for deterministic window tests.
var t0 = time.Unix(1_700_000_000, 0)

func TestWindowCountsEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	counts, covered := nilH.WindowCounts(t0, time.Minute)
	if covered != 0 {
		t.Errorf("nil histogram covered = %v, want 0", covered)
	}
	for i, c := range counts {
		if c != 0 {
			t.Errorf("nil histogram window bucket %d = %d, want 0", i, c)
		}
	}
	if q := nilH.WindowQuantile(t0, time.Minute, 0.99); q != 0 {
		t.Errorf("nil histogram window quantile = %g, want 0", q)
	}

	var h Histogram
	// First read seeds the ring at t0: no history yet, covered 0.
	if _, covered := h.WindowCounts(t0, time.Minute); covered != 0 {
		t.Errorf("first read covered = %v, want 0", covered)
	}
}

func TestWindowCountsDeltas(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Observe(3)
	h.WindowCounts(t0, time.Minute) // baseline slot at t0

	h.Observe(3)
	h.Observe(1000)
	counts, covered := h.WindowCounts(t0.Add(70*time.Second), time.Minute)
	if covered != 70*time.Second {
		t.Errorf("covered = %v, want 70s", covered)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 2 {
		t.Errorf("window count = %d, want 2 (the post-baseline observations)", total)
	}
	if counts[bucketIndex(3)] != 1 || counts[bucketIndex(1000)] != 1 {
		t.Errorf("window deltas landed in the wrong buckets: %v", counts)
	}
	// The cumulative view is untouched by window reads.
	if h.Count() != 4 {
		t.Errorf("cumulative count = %d, want 4", h.Count())
	}

	// A window larger than the retained history falls back to the oldest
	// slot: covered reports what was actually available.
	counts, covered = h.WindowCounts(t0.Add(70*time.Second), time.Hour)
	if covered != 70*time.Second {
		t.Errorf("over-long window covered = %v, want 70s", covered)
	}
}

func TestWindowBaselineSelection(t *testing.T) {
	var h Histogram
	// Build slots at t0, t0+10s, ..., t0+50s, observing one value before
	// each rotation so every 10 s slice holds exactly one observation.
	for i := 0; i < 6; i++ {
		h.Observe(5)
		h.WindowCounts(t0.Add(time.Duration(i)*WindowSlotDuration), time.Minute)
	}
	// At t0+50s with a 30 s window, the baseline is the t0+20s slot, which
	// saw 3 observations — so the window holds the remaining 3.
	counts, covered := h.WindowCounts(t0.Add(50*time.Second), 30*time.Second)
	if covered != 30*time.Second {
		t.Errorf("covered = %v, want 30s", covered)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Errorf("30s window count = %d, want 3", total)
	}
}

func TestWindowRingWrap(t *testing.T) {
	var h Histogram
	// Push far more rotations than the ring holds.
	for i := 0; i < 3*WindowSlots; i++ {
		h.Observe(7)
		h.WindowCounts(t0.Add(time.Duration(i)*WindowSlotDuration), time.Minute)
	}
	now := t0.Add(time.Duration(3*WindowSlots) * WindowSlotDuration)
	_, covered := h.WindowCounts(now, time.Hour)
	// Only WindowSlots of history can be retained; the oldest surviving
	// slot bounds what an over-long window can cover.
	max := time.Duration(WindowSlots+1) * WindowSlotDuration
	if covered <= 0 || covered > max {
		t.Errorf("covered after wrap = %v, want in (0, %v]", covered, max)
	}
	if h.Count() != int64(3*WindowSlots) {
		t.Errorf("cumulative count = %d, want %d", h.Count(), 3*WindowSlots)
	}
}

func TestWindowRotationIsRateLimited(t *testing.T) {
	var h Histogram
	h.WindowCounts(t0, time.Minute)
	for i := 0; i < 100; i++ {
		// Reads inside one slot duration must not push new slots.
		h.WindowCounts(t0.Add(time.Duration(i)*time.Millisecond), time.Minute)
	}
	h.win.mu.Lock()
	n := h.win.n
	h.win.mu.Unlock()
	if n != 1 {
		t.Errorf("ring holds %d slots after sub-slot reads, want 1", n)
	}
}

// TestQuantileEdgeCases pins the empty / single-observation / saturating
// behaviours: quantiles are total functions that never return NaN or ±Inf.
func TestQuantileEdgeCases(t *testing.T) {
	var empty Histogram
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2, math.NaN()} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}

	var single Histogram
	single.Observe(600) // bucket (512,1024]
	want := math.Sqrt(512 * 1024.0)
	for _, q := range []float64{-0.5, 0, 0.5, 1, 1.5} {
		got := single.Quantile(q)
		if got != want {
			t.Errorf("single-observation Quantile(%g) = %g, want %g", q, got, want)
		}
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("single-observation Quantile(%g) = %g, not finite", q, got)
		}
	}
	if got := single.Quantile(math.NaN()); got != want {
		t.Errorf("Quantile(NaN) = %g, want %g (clamped to 0)", got, want)
	}

	var sat Histogram
	sat.Observe(math.Inf(1)) // lands in the +Inf bucket
	sat.Observe(math.Ldexp(1, 60))
	got := sat.Quantile(0.99)
	wantSat := math.Ldexp(1, NumBuckets-2) // lower bound of the overflow bucket
	if got != wantSat || math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("saturating-bucket Quantile(0.99) = %g, want finite %g", got, wantSat)
	}
}

func TestBucketJSONRoundTrip(t *testing.T) {
	for _, b := range []Bucket{
		{UpperBound: 1, Count: 3},
		{UpperBound: 1024, Count: 7},
		{UpperBound: math.Inf(1), Count: 2},
	} {
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		var back Bucket
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back.Count != b.Count {
			t.Errorf("count round-trip: %d != %d", back.Count, b.Count)
		}
		if math.IsInf(b.UpperBound, 1) != math.IsInf(back.UpperBound, 1) ||
			(!math.IsInf(b.UpperBound, 1) && back.UpperBound != b.UpperBound) {
			t.Errorf("bound round-trip: %g != %g", back.UpperBound, b.UpperBound)
		}
	}
	var bad Bucket
	if err := json.Unmarshal([]byte(`{"le":"bogus","count":1}`), &bad); err == nil {
		t.Error("malformed bound should fail to unmarshal")
	}
}

// windowedRegistry builds a registry whose histogram has both cumulative
// and rolling-window state pinned to fixed instants.
func windowedRegistry() (*Registry, time.Time) {
	r := NewRegistry()
	h := r.Histogram("app_lat_ns", "latency")
	for _, v := range []float64{1, 3, 1000} {
		h.Observe(v)
	}
	r.SnapshotAt(t0) // baseline rotation
	h.Observe(3)
	h.Observe(1000)
	return r, t0.Add(70 * time.Second)
}

func TestGoldenWindowedJSON(t *testing.T) {
	r, now := windowedRegistry()
	var sb strings.Builder
	if err := r.SnapshotAt(now).WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	want := `{
  "metrics": [
    {
      "name": "app_lat_ns",
      "kind": "histogram",
      "help": "latency",
      "count": 5,
      "sum": 2007,
      "p50": 2.8284271247461903,
      "p95": 724.0773439350247,
      "p99": 724.0773439350247,
      "window_s": 70,
      "wcount": 2,
      "wp50": 2.8284271247461903,
      "wp95": 724.0773439350247,
      "wp99": 724.0773439350247,
      "buckets": [
        {
          "le": "1",
          "count": 1
        },
        {
          "le": "4",
          "count": 2
        },
        {
          "le": "1024",
          "count": 2
        }
      ]
    }
  ]
}
`
	if sb.String() != want {
		t.Errorf("windowed JSON mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestGoldenWindowedPrometheus(t *testing.T) {
	r, now := windowedRegistry()
	var sb strings.Builder
	if err := r.SnapshotAt(now).WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_lat_ns latency
# TYPE app_lat_ns histogram
app_lat_ns_bucket{le="1"} 1
app_lat_ns_bucket{le="4"} 3
app_lat_ns_bucket{le="1024"} 5
app_lat_ns_bucket{le="+Inf"} 5
app_lat_ns_sum 2007
app_lat_ns_count 5
app_lat_ns_p50 2.8284271247461903
app_lat_ns_p95 724.0773439350247
app_lat_ns_p99 724.0773439350247
app_lat_ns_window_seconds 70
app_lat_ns_window_count 2
app_lat_ns_window_p50 2.8284271247461903
app_lat_ns_window_p95 724.0773439350247
app_lat_ns_window_p99 724.0773439350247
`
	if sb.String() != want {
		t.Errorf("windowed exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestConcurrentScrapeAndRotation hammers Observe from several goroutines
// while scrapes (JSON and Prometheus, through the HTTP handler), synthetic
// window rotations and health-style window reads run concurrently — the
// -race proof that window rotation never tears the hot path.
func TestConcurrentScrapeAndRotation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("acq_process_ns", "wall time", L("path", "hybrid"))
	handler := r.Handler()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					h.Observe(float64(i%4096 + 1))
				}
			}
		}(w)
	}
	for i := 0; i < 100; i++ {
		// Advance a synthetic clock past the slot duration so rotations
		// genuinely happen while observations are in flight.
		now := t0.Add(time.Duration(i) * 11 * time.Second)
		counts, covered := h.WindowCounts(now, time.Minute)
		var total int64
		for _, c := range counts {
			total += c
		}
		if total < 0 || covered < 0 {
			t.Fatalf("window read went negative: total %d, covered %v", total, covered)
		}
		s := r.SnapshotAt(now)
		for _, m := range s.Metrics {
			var bt int64
			for _, b := range m.Buckets {
				bt += b.Count
			}
			if bt != m.Count {
				t.Fatalf("snapshot count %d != bucket total %d", m.Count, bt)
			}
			if m.WCount < 0 {
				t.Fatalf("negative window count %d", m.WCount)
			}
		}
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json", nil))
		if rec.Code != 200 {
			t.Fatalf("JSON scrape status %d", rec.Code)
		}
		rec = httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 {
			t.Fatalf("text scrape status %d", rec.Code)
		}
	}
	close(stop)
	wg.Wait()
}

// TestObserveAllocs is the allocation gate on the histogram hot path (run
// by `make allocgate`): Observe and the span timer must stay free of heap
// allocations on both live and nil receivers, with the window ring
// present.
func TestObserveAllocs(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x_ns", "")
	if a := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); a != 0 {
		t.Errorf("live Observe allocates %v per op, want 0", a)
	}
	var nilH *Histogram
	if a := testing.AllocsPerRun(1000, func() {
		nilH.Observe(1)
		nilH.Start().Stop()
	}); a != 0 {
		t.Errorf("nil histogram path allocates %v per op, want 0", a)
	}
	now := t0
	if a := testing.AllocsPerRun(100, func() {
		now = now.Add(time.Second)
		_, _ = h.WindowCounts(now, time.Minute)
	}); a != 0 {
		t.Errorf("WindowCounts allocates %v per op, want 0", a)
	}
}
