// Package xd1 models the host platform of the paper: a Cray XD1 compute
// node — an Opteron SMP joined to an application-acceleration FPGA through
// the RapidArray fabric — at the cost-model level needed to evaluate the
// hybrid data-processing pipeline: link bandwidth and latency, DMA burst
// behaviour, and clock-domain conversions between FPGA cycles and wall
// time.
package xd1

import (
	"fmt"
	"math"

	"repro/internal/telemetry"
)

// Fabric is a RapidArray-style interconnect link.
type Fabric struct {
	// BandwidthBytes is the sustained link bandwidth, bytes/s.
	BandwidthBytes float64
	// LatencyS is the per-transfer initiation latency, s.
	LatencyS float64
}

// RapidArray returns the XD1 processor↔FPGA link: ~1.6 GB/s sustained with
// ~2 µs initiation.
func RapidArray() Fabric {
	return Fabric{BandwidthBytes: 1.6e9, LatencyS: 2e-6}
}

// Validate reports unusable fabric parameters.
func (f Fabric) Validate() error {
	if f.BandwidthBytes <= 0 {
		return fmt.Errorf("xd1: bandwidth %g must be positive", f.BandwidthBytes)
	}
	if f.LatencyS < 0 {
		return fmt.Errorf("xd1: negative latency")
	}
	return nil
}

// TransferTime returns the wall time to move `bytes` in one transfer.
func (f Fabric) TransferTime(bytes float64) float64 {
	if bytes <= 0 {
		return f.LatencyS
	}
	return f.LatencyS + bytes/f.BandwidthBytes
}

// EffectiveBandwidth returns achieved bytes/s for transfers of the given
// size, exposing the latency penalty of small transfers.
func (f Fabric) EffectiveBandwidth(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes / f.TransferTime(bytes)
}

// Utilization returns the fraction of link capacity consumed by a sustained
// stream of `bytesPerSec`.
func (f Fabric) Utilization(bytesPerSec float64) float64 {
	return bytesPerSec / f.BandwidthBytes
}

// CPU describes the Opteron SMP half of the node.
type CPU struct {
	Cores   int
	ClockHz float64
}

// OpteronSMP returns the XD1-era dual-core 2.2 GHz Opteron.
func OpteronSMP() CPU {
	return CPU{Cores: 2, ClockHz: 2.2e9}
}

// Validate reports unusable CPU parameters.
func (c CPU) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("xd1: CPU cores %d must be >= 1", c.Cores)
	}
	if c.ClockHz <= 0 {
		return fmt.Errorf("xd1: CPU clock %g must be positive", c.ClockHz)
	}
	return nil
}

// FPGADevice is the acceleration FPGA attached to the fabric.
type FPGADevice struct {
	ClockHz float64
	// BRAMBits bounds on-chip accumulator storage (Virtex-II Pro 50:
	// ~4.2 Mbit of block RAM).
	BRAMBits int
}

// VirtexIIPro returns the XD1's Xilinx Virtex-II Pro at 150 MHz (typical
// achieved clock for arithmetic-heavy designs).
func VirtexIIPro() FPGADevice {
	return FPGADevice{ClockHz: 150e6, BRAMBits: 4_200_000}
}

// Validate reports unusable device parameters.
func (d FPGADevice) Validate() error {
	if d.ClockHz <= 0 {
		return fmt.Errorf("xd1: FPGA clock %g must be positive", d.ClockHz)
	}
	if d.BRAMBits <= 0 {
		return fmt.Errorf("xd1: FPGA BRAM %d must be positive", d.BRAMBits)
	}
	return nil
}

// CyclesToSeconds converts FPGA cycles to wall time.
func (d FPGADevice) CyclesToSeconds(cycles int64) float64 {
	return float64(cycles) / d.ClockHz
}

// SecondsToCycles converts wall time to whole FPGA cycles (rounded up).
func (d FPGADevice) SecondsToCycles(s float64) int64 {
	return int64(math.Ceil(s * d.ClockHz))
}

// Node is one XD1 compute node.
type Node struct {
	CPU    CPU
	FPGA   FPGADevice
	Fabric Fabric
}

// DefaultNode returns the reference XD1 node.
func DefaultNode() Node {
	return Node{CPU: OpteronSMP(), FPGA: VirtexIIPro(), Fabric: RapidArray()}
}

// Validate checks all components.
func (n Node) Validate() error {
	if err := n.CPU.Validate(); err != nil {
		return err
	}
	if err := n.FPGA.Validate(); err != nil {
		return err
	}
	return n.Fabric.Validate()
}

// DMA models a burst-transfer engine over the fabric.
type DMA struct {
	Fabric Fabric
	// BurstBytes is the maximum bytes moved per descriptor; larger
	// transfers split into multiple bursts, each paying the latency.
	BurstBytes float64

	transfersC *telemetry.Counter
	bytesC     *telemetry.Counter
	bytesHist  *telemetry.Histogram
	busyNsC    *telemetry.Counter
}

// Instrument publishes every subsequent TransferTime call into reg: the
// xd1_dma_transfers_total and xd1_dma_bytes_total counters, the
// xd1_dma_transfer_bytes size histogram, and the cumulative modeled link
// time xd1_dma_busy_ns_total.  A nil registry is a no-op.
func (d *DMA) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	d.transfersC = reg.Counter("xd1_dma_transfers_total", "DMA transfers modeled over the RapidArray fabric")
	d.bytesC = reg.Counter("xd1_dma_bytes_total", "bytes moved by modeled DMA transfers")
	d.bytesHist = reg.Histogram("xd1_dma_transfer_bytes", "modeled DMA transfer sizes, bytes")
	d.busyNsC = reg.Counter("xd1_dma_busy_ns_total", "cumulative modeled fabric transfer time, nanoseconds")
}

// NewDMA validates and constructs the engine.
func NewDMA(f Fabric, burstBytes float64) (*DMA, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if burstBytes <= 0 {
		return nil, fmt.Errorf("xd1: burst size %g must be positive", burstBytes)
	}
	return &DMA{Fabric: f, BurstBytes: burstBytes}, nil
}

// TransferTime returns the wall time to move `bytes` through burst-sized
// descriptors.  When the engine is instrumented, the transfer is also
// recorded in the xd1_dma_* telemetry families.
func (d *DMA) TransferTime(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	bursts := math.Ceil(bytes / d.BurstBytes)
	t := bursts*d.Fabric.LatencyS + bytes/d.Fabric.BandwidthBytes
	d.transfersC.Inc()
	d.bytesC.Add(int64(bytes))
	d.bytesHist.Observe(bytes)
	d.busyNsC.Add(int64(t * 1e9))
	return t
}

// Throughput returns sustained bytes/s for a stream of transfers of the
// given total size.
func (d *DMA) Throughput(bytes float64) float64 {
	t := d.TransferTime(bytes)
	if t <= 0 {
		return 0
	}
	return bytes / t
}
