package xd1

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFabricTransferTime(t *testing.T) {
	f := Fabric{BandwidthBytes: 1e9, LatencyS: 1e-6}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1 MB at 1 GB/s = 1 ms plus 1 µs latency.
	got := f.TransferTime(1e6)
	if math.Abs(got-(1e-3+1e-6)) > 1e-12 {
		t.Errorf("transfer time %g", got)
	}
	// Zero-byte transfer still pays latency.
	if f.TransferTime(0) != 1e-6 {
		t.Error("zero transfer should cost latency")
	}
}

func TestFabricEffectiveBandwidth(t *testing.T) {
	f := RapidArray()
	small := f.EffectiveBandwidth(64)
	large := f.EffectiveBandwidth(1e7)
	if small >= large {
		t.Errorf("small transfers (%g B/s) should be slower than large (%g B/s)", small, large)
	}
	// Large transfers approach nominal bandwidth.
	if large < 0.99*f.BandwidthBytes {
		t.Errorf("large transfer bandwidth %g too far below nominal %g", large, f.BandwidthBytes)
	}
	if f.EffectiveBandwidth(0) != 0 {
		t.Error("zero bytes has zero bandwidth")
	}
	if u := f.Utilization(f.BandwidthBytes / 2); math.Abs(u-0.5) > 1e-12 {
		t.Errorf("utilization %g, want 0.5", u)
	}
}

func TestFabricValidate(t *testing.T) {
	if err := (Fabric{BandwidthBytes: 0}).Validate(); err == nil {
		t.Error("zero bandwidth")
	}
	if err := (Fabric{BandwidthBytes: 1, LatencyS: -1}).Validate(); err == nil {
		t.Error("negative latency")
	}
}

func TestCPUAndFPGAValidate(t *testing.T) {
	if err := OpteronSMP().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (CPU{Cores: 0, ClockHz: 1e9}).Validate(); err == nil {
		t.Error("zero cores")
	}
	if err := (CPU{Cores: 1, ClockHz: 0}).Validate(); err == nil {
		t.Error("zero clock")
	}
	if err := VirtexIIPro().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (FPGADevice{ClockHz: 0, BRAMBits: 1}).Validate(); err == nil {
		t.Error("zero FPGA clock")
	}
	if err := (FPGADevice{ClockHz: 1e8, BRAMBits: 0}).Validate(); err == nil {
		t.Error("zero BRAM")
	}
}

func TestClockConversions(t *testing.T) {
	d := FPGADevice{ClockHz: 100e6, BRAMBits: 1}
	if got := d.CyclesToSeconds(100e6 / 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("cycles->s = %g", got)
	}
	if got := d.SecondsToCycles(1e-6); got != 100 {
		t.Errorf("s->cycles = %d", got)
	}
	// Round trip property (within one cycle of rounding).
	f := func(us uint16) bool {
		s := float64(us) * 1e-6
		c := d.SecondsToCycles(s)
		back := d.CyclesToSeconds(c)
		return back >= s && back-s < 2e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultNode(t *testing.T) {
	n := DefaultNode()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := n
	bad.CPU.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid CPU should fail node validation")
	}
	bad2 := n
	bad2.Fabric.BandwidthBytes = 0
	if err := bad2.Validate(); err == nil {
		t.Error("invalid fabric should fail node validation")
	}
	bad3 := n
	bad3.FPGA.ClockHz = 0
	if err := bad3.Validate(); err == nil {
		t.Error("invalid FPGA should fail node validation")
	}
}

func TestDMA(t *testing.T) {
	f := Fabric{BandwidthBytes: 1e9, LatencyS: 1e-6}
	d, err := NewDMA(f, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// 8192 bytes = 2 bursts: 2 µs latency + 8.192 µs wire time.
	got := d.TransferTime(8192)
	want := 2*1e-6 + 8192/1e9
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("DMA transfer %g, want %g", got, want)
	}
	if d.TransferTime(0) != 0 {
		t.Error("zero transfer is free")
	}
	// Bigger bursts improve throughput for the same payload.
	small, _ := NewDMA(f, 256)
	if small.Throughput(1e6) >= d.Throughput(1e6) {
		t.Error("larger bursts should improve throughput")
	}
	if d.Throughput(0) != 0 {
		t.Error("zero payload throughput is 0")
	}
	if _, err := NewDMA(f, 0); err == nil {
		t.Error("zero burst size")
	}
	if _, err := NewDMA(Fabric{}, 64); err == nil {
		t.Error("invalid fabric")
	}
}

// TestDMAMonotonicity: transfer time is nondecreasing in payload size.
func TestDMAMonotonicity(t *testing.T) {
	d, _ := NewDMA(RapidArray(), 4096)
	prev := 0.0
	for bytes := 64.0; bytes <= 1e8; bytes *= 4 {
		tt := d.TransferTime(bytes)
		if tt < prev {
			t.Fatalf("transfer time decreased at %g bytes", bytes)
		}
		prev = tt
	}
}
