// benchjson converts `go test -bench` text output (on stdin) into a
// labelled JSON document so benchmark runs can be diffed across commits:
//
//	go test -run XXX -bench Micro -benchmem . | \
//	    go run ./scripts/benchjson -label after -out BENCH_PR4.json
//
// The output file maps label → benchmark name → parsed results (ns/op,
// B/op, allocs/op and any custom ReportMetric values).  An existing file
// is merged, so "before" and "after" runs accumulate into one document.
//
// With -diff BASELINE.json the tool becomes a regression gate instead of
// a ledger writer: the fresh run on stdin is compared benchmark-by-
// benchmark against the named label (-diff-label, default "after") of the
// baseline ledger, and the exit status is nonzero if any benchmark
// matching -match regressed by more than -max-regress percent in ns/op:
//
//	go test -run XXX -bench 'MicroFrameDeconvolve' -benchmem . | \
//	    go run ./scripts/benchjson -diff BENCH_PR4.json \
//	        -match 'MicroFrameDeconvolve|FHTDecodeBatch' -max-regress 5
//
// Benchmarks present on only one side are reported but never fail the
// gate, so adding or retiring a benchmark does not break the diff.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line in parsed form.
type Result struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// parseLine parses one `BenchmarkName-N  iters  value unit  ...` line,
// reporting ok=false for non-benchmark lines.
func parseLine(line string) (name string, r Result, ok bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Result{}, false
	}
	name = strings.SplitN(fields[0], "-", 2)[0]
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	r = Result{Iterations: iters}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return name, r, true
}

// runDiff compares the fresh results against the baseline ledger's
// chosen label and returns false if any matched benchmark regressed in
// ns/op beyond the tolerance.
func runDiff(fresh map[string]Result, baselinePath, baselineLabel, match string, maxRegressPct float64) bool {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
		return false
	}
	doc := map[string]map[string]Result{}
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: baseline %s: %v\n", baselinePath, err)
		return false
	}
	base := doc[baselineLabel]
	if base == nil {
		fmt.Fprintf(os.Stderr, "benchjson: baseline %s has no label %q\n", baselinePath, baselineLabel)
		return false
	}
	re, err := regexp.Compile(match)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: -match: %v\n", err)
		return false
	}

	var names []string
	for name := range fresh {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no fresh benchmarks match %q\n", match)
		return false
	}
	pass, compared := true, 0
	for _, name := range names {
		b, inBase := base[name]
		if !inBase {
			fmt.Printf("benchjson: %-40s %12.0f ns/op  (no baseline, skipped)\n", name, fresh[name].NsPerOp)
			continue
		}
		compared++
		deltaPct := 100 * (fresh[name].NsPerOp - b.NsPerOp) / b.NsPerOp
		verdict := "ok"
		if deltaPct > maxRegressPct {
			verdict = "REGRESSED"
			pass = false
		}
		fmt.Printf("benchjson: %-40s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
			name, b.NsPerOp, fresh[name].NsPerOp, deltaPct, verdict)
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: nothing to compare against %s[%s]\n", baselinePath, baselineLabel)
		return false
	}
	if pass {
		fmt.Printf("benchjson: %d benchmarks within %.1f%% of %s[%s]\n",
			compared, maxRegressPct, baselinePath, baselineLabel)
	}
	return pass
}

func main() {
	label := flag.String("label", "run", "label for this benchmark run (e.g. before, after)")
	out := flag.String("out", "", "JSON file to merge results into (default stdout only)")
	diff := flag.String("diff", "", "diff mode: compare the fresh run against this baseline ledger and exit nonzero on regression")
	diffLabel := flag.String("diff-label", "after", "baseline label to diff against")
	match := flag.String("match", ".", "regexp selecting which benchmarks the diff gate applies to")
	maxRegress := flag.Float64("max-regress", 5, "fail the diff if ns/op regressed by more than this percent")
	flag.Parse()

	doc := map[string]map[string]Result{}
	if *out != "" {
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, &doc); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: existing %s is not mergeable: %v\n", *out, err)
				os.Exit(1)
			}
		}
	}
	if doc[*label] == nil {
		doc[*label] = map[string]Result{}
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the text through so the run stays readable
		if name, r, ok := parseLine(line); ok {
			doc[*label][name] = r
			n++
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	if *diff != "" {
		if !runDiff(doc[*label], *diff, *diffLabel, *match, *maxRegress) {
			os.Exit(1)
		}
		return
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: merged %d benchmarks into %s under label %q\n", n, *out, *label)
}
