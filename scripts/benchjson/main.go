// benchjson converts `go test -bench` text output (on stdin) into a
// labelled JSON document so benchmark runs can be diffed across commits:
//
//	go test -run XXX -bench Micro -benchmem . | \
//	    go run ./scripts/benchjson -label after -out BENCH_PR4.json
//
// The output file maps label → benchmark name → parsed results (ns/op,
// B/op, allocs/op and any custom ReportMetric values).  An existing file
// is merged, so "before" and "after" runs accumulate into one document.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line in parsed form.
type Result struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// parseLine parses one `BenchmarkName-N  iters  value unit  ...` line,
// reporting ok=false for non-benchmark lines.
func parseLine(line string) (name string, r Result, ok bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Result{}, false
	}
	name = strings.SplitN(fields[0], "-", 2)[0]
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	r = Result{Iterations: iters}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return name, r, true
}

func main() {
	label := flag.String("label", "run", "label for this benchmark run (e.g. before, after)")
	out := flag.String("out", "", "JSON file to merge results into (default stdout only)")
	flag.Parse()

	doc := map[string]map[string]Result{}
	if *out != "" {
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, &doc); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: existing %s is not mergeable: %v\n", *out, err)
				os.Exit(1)
			}
		}
	}
	if doc[*label] == nil {
		doc[*label] = map[string]Result{}
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the text through so the run stays readable
		if name, r, ok := parseLine(line); ok {
			doc[*label][name] = r
			n++
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: merged %d benchmarks into %s under label %q\n", n, *out, *label)
}
