// Command clusterreport asserts the cluster-mode invariants of an imsload
// -json report — the machine half of scripts/serve-cluster-smoke.sh.  It
// decodes the report and fails unless:
//
//   - the run completed requests and recorded topology "cluster";
//   - the shed rate is at or under -max-shed (the loss bound the smoke
//     test grants a mid-burst backend kill);
//   - at least -min-backends distinct fleet members served frames,
//     proving the gateway actually fanned out (and re-routed around the
//     killed backend rather than pinning everything to one survivor).
//
// Usage:
//
//	clusterreport -report FILE [-max-shed RATE] [-min-backends N]
//
// On success it prints a one-line summary; on violation it exits 1 with
// the failed invariant.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// clusterReport is the slice of imsload's -json report this checker needs.
type clusterReport struct {
	// Requests is the total completed request count.
	Requests int `json:"requests"`
	// Shed counts RESOURCE_EXHAUSTED/UNAVAILABLE responses.
	Shed int `json:"shed"`
	// ShedRate is Shed over Requests.
	ShedRate float64 `json:"shed_rate"`
	// Topology echoes imsload's -topology flag.
	Topology string `json:"topology"`
	// Backends is the per-fleet-member attribution, keyed by backend id.
	Backends map[string]struct {
		// Frames is the OK results the backend served.
		Frames int64 `json:"frames"`
		// Retried counts frames that needed a sibling retry to land.
		Retried int64 `json:"retried"`
	} `json:"backends"`
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "clusterreport: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	reportPath := flag.String("report", "", "imsload -json report to check")
	maxShed := flag.Float64("max-shed", 0.05, "maximum tolerated shed rate")
	minBackends := flag.Int("min-backends", 2, "minimum distinct backends that must have served frames")
	flag.Parse()
	if *reportPath == "" {
		fail("need -report FILE")
	}
	body, err := os.ReadFile(*reportPath)
	if err != nil {
		fail("%v", err)
	}
	var rep clusterReport
	if err := json.Unmarshal(body, &rep); err != nil {
		fail("parse %s: %v", *reportPath, err)
	}
	if rep.Requests == 0 {
		fail("report has zero completed requests")
	}
	if rep.Topology != "cluster" {
		fail("report topology %q, want cluster", rep.Topology)
	}
	if rep.ShedRate > *maxShed {
		fail("shed rate %.4f (%d/%d) exceeds loss bound %.4f",
			rep.ShedRate, rep.Shed, rep.Requests, *maxShed)
	}
	if len(rep.Backends) < *minBackends {
		fail("only %d backend(s) served frames, want >= %d", len(rep.Backends), *minBackends)
	}
	var retried int64
	for _, b := range rep.Backends {
		retried += b.Retried
	}
	fmt.Printf("clusterreport: OK — %d requests, shed rate %.4f <= %.4f, %d backends served (%d frames sibling-retried)\n",
		rep.Requests, rep.ShedRate, *maxShed, len(rep.Backends), retried)
}
