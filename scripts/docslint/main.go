// Command docslint fails when exported identifiers in the given package
// directories lack doc comments — the documentation gate run by `make
// docslint` (godoc hygiene is part of the observability layer's contract:
// every exported metric entry point must say what it records).
//
// Usage:
//
//	docslint [-metrics-doc FILE] DIR [DIR...]
//
// Each DIR is parsed as one package (tests excluded); every exported
// top-level type, function, method, var and const must carry a doc comment.
// Offenders are listed as file:line: name and the exit status is 1.
//
// With -metrics-doc, the same directories are also scanned for telemetry
// family registrations — string-literal first arguments to Counter, Gauge
// and Histogram calls — and every family name found in code must appear in
// the given catalogue document (docs/OBSERVABILITY.md).  A metric exported
// by code but missing from the catalogue fails the gate: the catalogue is
// the operator's contract, and silent families rot it.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	metricsDoc := flag.String("metrics-doc", "", "metric catalogue markdown; every family registered in code must be named in it")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: docslint [-metrics-doc FILE] DIR [DIR...]")
		os.Exit(2)
	}
	bad := 0
	families := map[string][]string{} // family name -> registration sites
	for _, dir := range flag.Args() {
		n, err := lintDir(dir, families)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docslint: %v\n", err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "docslint: %d exported identifier(s) without doc comments\n", bad)
		os.Exit(1)
	}
	if *metricsDoc != "" {
		missing, err := checkCatalogue(*metricsDoc, families)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docslint: %v\n", err)
			os.Exit(2)
		}
		if missing > 0 {
			fmt.Fprintf(os.Stderr, "docslint: %d metric familie(s) missing from %s\n", missing, *metricsDoc)
			os.Exit(1)
		}
	}
}

// checkCatalogue reports every registered family name that the catalogue
// document never mentions.
func checkCatalogue(path string, families map[string][]string) (int, error) {
	doc, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	text := string(doc)
	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	missing := 0
	for _, name := range names {
		if !strings.Contains(text, name) {
			for _, site := range families[name] {
				fmt.Printf("%s: metric family %q not in %s\n", site, name, path)
			}
			missing++
		}
	}
	return missing, nil
}

// lintDir checks one package directory, reporting each undocumented
// exported identifier and collecting metric-family registrations into
// families (name -> file:line sites).
func lintDir(dir string, families map[string][]string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	bad := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				bad += lintDecl(fset, decl)
			}
			collectFamilies(fset, f, families)
		}
	}
	return bad, nil
}

// collectFamilies records every Counter/Gauge/Histogram call whose family
// name is a string literal.  Calls with computed names are skipped — they
// cannot be matched against a static catalogue.
func collectFamilies(fset *token.FileSet, f *ast.File, families map[string][]string) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Counter", "Gauge", "Histogram":
		default:
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING || len(lit.Value) < 2 {
			return true
		}
		name := strings.Trim(lit.Value, "`\"")
		if name == "" {
			return true
		}
		families[name] = append(families[name], fset.Position(call.Pos()).String())
		return true
	})
}

// lintDecl reports the undocumented exported identifiers of one top-level
// declaration.
func lintDecl(fset *token.FileSet, decl ast.Decl) int {
	bad := 0
	report := func(pos token.Pos, name string) {
		fmt.Printf("%s: %s\n", fset.Position(pos), name)
		bad++
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil {
			name := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) > 0 {
				name = recvName(d.Recv.List[0].Type) + "." + name
			}
			report(d.Pos(), name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					report(s.Pos(), s.Name.Name)
				}
			case *ast.ValueSpec:
				// A doc comment on the grouped decl covers its specs;
				// otherwise each exported spec needs its own.
				if d.Doc != nil || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						report(n.Pos(), n.Name)
					}
				}
			}
		}
	}
	return bad
}

// recvName renders a method receiver type for the report.
func recvName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvName(t.X)
	}
	return "?"
}
