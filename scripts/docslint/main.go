// Command docslint fails when exported identifiers in the given package
// directories lack doc comments — the documentation gate run by `make
// docslint` (godoc hygiene is part of the observability layer's contract:
// every exported metric entry point must say what it records).
//
// Usage:
//
//	docslint DIR [DIR...]
//
// Each DIR is parsed as one package (tests excluded); every exported
// top-level type, function, method, var and const must carry a doc comment.
// Offenders are listed as file:line: name and the exit status is 1.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docslint DIR [DIR...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		n, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docslint: %v\n", err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "docslint: %d exported identifier(s) without doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir checks one package directory and reports each undocumented
// exported identifier, returning how many it found.
func lintDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	bad := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				bad += lintDecl(fset, decl)
			}
		}
	}
	return bad, nil
}

// lintDecl reports the undocumented exported identifiers of one top-level
// declaration.
func lintDecl(fset *token.FileSet, decl ast.Decl) int {
	bad := 0
	report := func(pos token.Pos, name string) {
		fmt.Printf("%s: %s\n", fset.Position(pos), name)
		bad++
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil {
			name := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) > 0 {
				name = recvName(d.Recv.List[0].Type) + "." + name
			}
			report(d.Pos(), name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					report(s.Pos(), s.Name.Name)
				}
			case *ast.ValueSpec:
				// A doc comment on the grouped decl covers its specs;
				// otherwise each exported spec needs its own.
				if d.Doc != nil || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						report(n.Pos(), n.Name)
					}
				}
			}
		}
	}
	return bad
}

// recvName renders a method receiver type for the report.
func recvName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvName(t.X)
	}
	return "?"
}
