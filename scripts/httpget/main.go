// Command httpget is a minimal curl substitute for the repo's smoke
// scripts (the CI container does not guarantee curl): it GETs one URL,
// prints the response body to stdout, and exits 0 only when the status
// code matches -expect — retrying for up to -for so scripts can wait on
// state transitions (daemon start, readiness flips) without sleep loops.
//
// Usage:
//
//	httpget [-expect CODE] [-for D] [-interval D] URL
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	expect := flag.Int("expect", 200, "status code required for exit 0")
	waitFor := flag.Duration("for", 0, "keep retrying until the status matches, up to this long (0 = single attempt)")
	interval := flag.Duration("interval", 100*time.Millisecond, "delay between retries")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: httpget [-expect CODE] [-for D] [-interval D] URL")
		os.Exit(2)
	}
	url := flag.Arg(0)

	deadline := time.Now().Add(*waitFor)
	for {
		status, body, err := get(url)
		if err == nil && status == *expect {
			os.Stdout.Write(body)
			return
		}
		if !time.Now().Before(deadline) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "httpget: %s: %v\n", url, err)
			} else {
				fmt.Fprintf(os.Stderr, "httpget: %s: status %d, want %d\n", url, status, *expect)
				os.Stdout.Write(body)
			}
			os.Exit(1)
		}
		time.Sleep(*interval)
	}
}

// get performs one bounded GET, returning the status and full body.
func get(url string) (int, []byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, body, nil
}
