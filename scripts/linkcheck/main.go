// Command linkcheck verifies the relative links in markdown files: every
// `[text](target)` whose target is not an absolute URL or a pure anchor
// must resolve to an existing file or directory relative to the linking
// file.  It is the docs half of `make docs-verify` — a renamed source file
// or a typo'd cross-reference between docs/*.md fails the gate instead of
// shipping as a dead link.
//
// Usage:
//
//	linkcheck FILE [FILE...]
//
// Dead links are listed as file: target and the exit status is 1.  Anchor
// suffixes (`doc.md#section`) are stripped before the existence check;
// anchors themselves are not validated.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links, capturing the target.  Reference
// definitions and autolinks are out of scope — the repo's docs use inline
// links throughout.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck FILE [FILE...]")
		os.Exit(2)
	}
	dead := 0
	for _, path := range os.Args[1:] {
		n, err := checkFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		dead += n
	}
	if dead > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d dead relative link(s)\n", dead)
		os.Exit(1)
	}
}

// checkFile scans one markdown file and reports each relative link target
// that does not exist on disk.
func checkFile(path string) (int, error) {
	body, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	dead := 0
	inFence := false
	for _, line := range strings.Split(string(body), "\n") {
		// Skip fenced code blocks: shell snippets legitimately contain
		// `](...)`-shaped text that is not a link.
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skippable(target) {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				fmt.Printf("%s: %s\n", path, m[1])
				dead++
			}
		}
	}
	return dead, nil
}

// skippable reports link targets outside the checker's scope: absolute
// URLs, mail links and pure in-page anchors.
func skippable(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
