#!/bin/sh
# obs-smoke.sh: end-to-end observability-plane smoke test.
#
# Starts imsd with the full observability surface on (flight recorder +
# dump dir, a deliberately impossible latency SLO so the health evaluator
# must degrade, continuous profiling, dedicated pprof port, build_info
# stamped via ldflags), drives a traced imsload burst, then asserts the
# joins that make the plane useful rather than merely present:
#
#   1. a histogram exemplar's trace id resolves to a wide event on
#      /debug/events (the metrics -> events pivot),
#   2. the forced SLO degradation tripped a flight-recorder black-box
#      dump with events in it,
#   3. build_info carries the ldflags-stamped version,
#   4. the imsload -json report names its slowest requests by trace id,
#   5. profiledump summarizes the on-disk profile ring,
#   6. an imsgw in front reports the backend up on /metrics/fleet,
#   7. both daemons drain cleanly on SIGTERM.
#
# Phase 2 exercises the embedded metric history store and the anomaly
# SLO (PR 10): a fresh imsd runs with -history and a fast sampler, a
# baseline burst warms the anomaly detector, an injected latency spike
# (64x the frame size) must flip anomaly_active{target=frame_latency_p99}
# and degrade health, then the daemon is SIGKILLed and restarted on the
# same history directory — /metrics/history must serve a continuous
# acq_process_ns p99 spanning both lifetimes, and the post-restart
# imsload -json report must carry the server_history block.
#
# With OBS_SMOKE_DIR set, artifacts (logs, dumps, profiles, report, the
# tsdb directory) are written there instead of a throwaway mktemp dir, so
# CI can upload them on failure.
set -eu

GO=${GO:-go}
PORT=${SMOKE_PORT:-17075}
MPORT=$((PORT + 1))
PPROF_PORT=$((PORT + 2))
GW_PORT=$((PORT + 3))
GW_MPORT=$((PORT + 4))
VERSION=obs-smoke

if [ -n "${OBS_SMOKE_DIR:-}" ]; then
    TMP=$OBS_SMOKE_DIR
    mkdir -p "$TMP"
    KEEP_TMP=1
else
    TMP=$(mktemp -d)
    KEEP_TMP=0
fi
DAEMON_PID=""
GW_PID=""
H_PID=""

cleanup() {
    for pid in "$DAEMON_PID" "$GW_PID" "$H_PID"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
    if [ "$KEEP_TMP" -eq 0 ]; then
        rm -rf "$TMP"
    fi
}
trap cleanup EXIT

echo "obs-smoke: building binaries (version stamp: $VERSION)"
$GO build -ldflags "-X repro/internal/buildinfo.Version=$VERSION" -o "$TMP/imsd" ./cmd/imsd
$GO build -ldflags "-X repro/internal/buildinfo.Version=$VERSION" -o "$TMP/imsgw" ./cmd/imsgw
$GO build -o "$TMP/imsload" ./cmd/imsload
$GO build -o "$TMP/profiledump" ./cmd/profiledump
$GO build -o "$TMP/obscheck" ./scripts/obscheck
$GO build -o "$TMP/httpget" ./scripts/httpget

echo "obs-smoke: starting imsd on 127.0.0.1:$PORT (impossible SLO, profiling on)"
"$TMP/imsd" -addr "127.0.0.1:$PORT" -metrics "127.0.0.1:$MPORT" \
    -pprof "127.0.0.1:$PPROF_PORT" \
    -events 1024 -events-dump "$TMP/dumps" \
    -slo-latency 1ns -health-interval 200ms \
    -profile-dir "$TMP/profiles" -profile-cpu 500ms -profile-interval 500ms -profile-retain 4 \
    -drain-timeout 10s >"$TMP/imsd.log" 2>&1 &
DAEMON_PID=$!

"$TMP/httpget" -expect 200 -for 5s "http://127.0.0.1:$MPORT/healthz" >/dev/null || {
    echo "obs-smoke: FAIL — imsd never became live"; cat "$TMP/imsd.log"; exit 1; }

echo "obs-smoke: starting imsgw on 127.0.0.1:$GW_PORT over the backend"
"$TMP/imsgw" -addr "127.0.0.1:$GW_PORT" -metrics "127.0.0.1:$GW_MPORT" \
    -backends "127.0.0.1:$PORT@http://127.0.0.1:$MPORT/readyz" \
    -probe-interval 100ms -drain-timeout 10s >"$TMP/imsgw.log" 2>&1 &
GW_PID=$!

"$TMP/httpget" -expect 200 -for 5s "http://127.0.0.1:$GW_MPORT/readyz" >/dev/null || {
    echo "obs-smoke: FAIL — imsgw never became ready"; cat "$TMP/imsgw.log"; exit 1; }

echo "obs-smoke: traced 2s burst, 4 clients"
if ! "$TMP/imsload" -addr "127.0.0.1:$PORT" -clients 4 -duration 2s -tof 128 \
    -json "$TMP/report.json" -trace "$TMP/client-trace.json" >"$TMP/imsload.log" 2>&1; then
    echo "obs-smoke: FAIL — imsload reported errors"
    cat "$TMP/imsload.log" "$TMP/imsd.log"
    exit 1
fi

echo "obs-smoke: asserting exemplar -> wide-event join"
"$TMP/obscheck" join -metrics "http://127.0.0.1:$MPORT/metrics.json" \
    -events "http://127.0.0.1:$MPORT/debug/events"

echo "obs-smoke: asserting build_info version stamp"
"$TMP/obscheck" buildinfo -metrics "http://127.0.0.1:$MPORT/metrics.json" -version "$VERSION"
"$TMP/obscheck" buildinfo -metrics "http://127.0.0.1:$GW_MPORT/metrics.json" -version "$VERSION"

echo "obs-smoke: asserting the fleet rollup sees the backend"
"$TMP/obscheck" fleet -url "http://127.0.0.1:$GW_MPORT/metrics/fleet" -min-up 1

echo "obs-smoke: asserting the dedicated pprof port answers"
"$TMP/httpget" -expect 200 "http://127.0.0.1:$PPROF_PORT/debug/pprof/cmdline" >/dev/null

echo "obs-smoke: asserting the slowest-request trace ids in the report"
if ! grep -q '"slowest_requests"' "$TMP/report.json"; then
    echo "obs-smoke: FAIL — report lacks slowest_requests"; cat "$TMP/report.json"; exit 1
fi
if ! grep -Eq '"trace_id": *"[0-9a-f]{16}"' "$TMP/report.json"; then
    echo "obs-smoke: FAIL — slowest_requests carry no trace ids"; cat "$TMP/report.json"; exit 1
fi

# The impossible SLO may burn through DEGRADED straight to UNHEALTHY
# within one health tick; either transition must have tripped a dump.
echo "obs-smoke: waiting for the forced SLO degradation to dump the flight recorder"
i=0
until "$TMP/obscheck" dump -dir "$TMP/dumps" -reason degraded 2>/dev/null ||
    "$TMP/obscheck" dump -dir "$TMP/dumps" -reason unhealthy 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "obs-smoke: FAIL — no degraded black-box dump appeared"
        ls -l "$TMP/dumps" 2>/dev/null || true
        cat "$TMP/imsd.log"
        exit 1
    fi
    sleep 0.1
done

echo "obs-smoke: summarizing the profile ring"
i=0
until [ -n "$(ls "$TMP/profiles"/heap-*.pprof 2>/dev/null)" ]; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "obs-smoke: FAIL — no heap captures in the profile ring"; cat "$TMP/imsd.log"; exit 1
    fi
    sleep 0.1
done
"$TMP/profiledump" -dir "$TMP/profiles" -kind heap -top 3 >"$TMP/profiledump.txt"
if ! grep -q "heap captures" "$TMP/profiledump.txt"; then
    echo "obs-smoke: FAIL — profiledump produced no summary"; cat "$TMP/profiledump.txt"; exit 1
fi

echo "obs-smoke: draining imsgw"
kill -TERM "$GW_PID"
rc=0
wait "$GW_PID" || rc=$?
GW_PID=""
if [ "$rc" -ne 0 ]; then
    echo "obs-smoke: FAIL — imsgw exited $rc"; cat "$TMP/imsgw.log"; exit 1
fi

echo "obs-smoke: draining imsd"
kill -TERM "$DAEMON_PID"
rc=0
wait "$DAEMON_PID" || rc=$?
DAEMON_PID=""
if [ "$rc" -ne 0 ]; then
    echo "obs-smoke: FAIL — imsd exited $rc"; cat "$TMP/imsd.log"; exit 1
fi

# ---------------------------------------------------------------------------
# Phase 2: metric history store + anomaly SLO.
# ---------------------------------------------------------------------------
H_PORT=$((PORT + 5))
H_MPORT=$((PORT + 6))

start_history_daemon() {
    "$TMP/imsd" -addr "127.0.0.1:$H_PORT" -metrics "127.0.0.1:$H_MPORT" \
        -history "$TMP/tsdb" -history-interval 250ms \
        -anomaly-threshold 3 -anomaly-warmup 4 \
        -health-interval 200ms -drain-timeout 10s >>"$TMP/imsd-history.log" 2>&1 &
    H_PID=$!
    "$TMP/httpget" -expect 200 -for 5s "http://127.0.0.1:$H_MPORT/healthz" >/dev/null || {
        echo "obs-smoke: FAIL — history imsd never became live"
        cat "$TMP/imsd-history.log"; exit 1; }
}

echo "obs-smoke: phase 2 — starting imsd with -history on 127.0.0.1:$H_PORT"
start_history_daemon

echo "obs-smoke: baseline burst (small frames) to warm the anomaly detector"
"$TMP/imsload" -addr "127.0.0.1:$H_PORT" -clients 2 -duration 2s -tof 64 -path cpu \
    >"$TMP/imsload-baseline.log" 2>&1 || {
    echo "obs-smoke: FAIL — baseline burst errored"; cat "$TMP/imsload-baseline.log"; exit 1; }
sleep 1

echo "obs-smoke: injected latency spike (64x frame size) must flip the anomaly SLO"
"$TMP/imsload" -addr "127.0.0.1:$H_PORT" -clients 2 -duration 3s -tof 4096 -path cpu \
    >"$TMP/imsload-spike.log" 2>&1 || {
    echo "obs-smoke: FAIL — spike burst errored"; cat "$TMP/imsload-spike.log"; exit 1; }
"$TMP/obscheck" anomaly -metrics "http://127.0.0.1:$H_MPORT/metrics.json" \
    -target frame_latency_p99 -want 1 -for 10s || {
    echo "obs-smoke: FAIL — latency spike never flipped anomaly_active"
    "$TMP/httpget" "http://127.0.0.1:$H_MPORT/metrics.json" | grep anomaly || true
    cat "$TMP/imsd-history.log"; exit 1; }

echo "obs-smoke: SIGKILL the daemon mid-flight, restart on the same history dir"
KILL_TS=$(date +%s)
kill -9 "$H_PID" 2>/dev/null || true
wait "$H_PID" 2>/dev/null || true
H_PID=""
start_history_daemon

echo "obs-smoke: post-restart burst (report must gain server_history)"
if ! "$TMP/imsload" -addr "127.0.0.1:$H_PORT" -clients 2 -duration 2s -tof 64 -path cpu \
    -metrics "http://127.0.0.1:$H_MPORT/metrics.json" \
    -json "$TMP/report-history.json" >"$TMP/imsload-after.log" 2>&1; then
    echo "obs-smoke: FAIL — post-restart burst errored"; cat "$TMP/imsload-after.log"; exit 1
fi
if ! grep -q '"server_history"' "$TMP/report-history.json"; then
    echo "obs-smoke: FAIL — report lacks server_history"; cat "$TMP/report-history.json"; exit 1
fi

echo "obs-smoke: asserting history is continuous across the SIGKILL"
"$TMP/obscheck" history -url "http://127.0.0.1:$H_MPORT/metrics/history" \
    -family acq_process_ns -quantile 0.99 -since -10m -min-points 2 \
    -span-unix "$KILL_TS" -for 10s || {
    echo "obs-smoke: FAIL — no continuous acq_process_ns history across restart"
    ls -lR "$TMP/tsdb" 2>/dev/null || true
    cat "$TMP/imsd-history.log"; exit 1; }

echo "obs-smoke: draining the history daemon"
kill -TERM "$H_PID"
rc=0
wait "$H_PID" || rc=$?
H_PID=""
if [ "$rc" -ne 0 ]; then
    echo "obs-smoke: FAIL — history imsd exited $rc"; cat "$TMP/imsd-history.log"; exit 1
fi

echo "obs-smoke: OK"
