// Command obscheck is the observability smoke-test assertion helper
// (scripts/obs-smoke.sh): small subcommands that prove the fleet
// observability plane actually joins up end to end, instead of each
// surface merely serving bytes.
//
// Usage:
//
//	obscheck join -metrics URL -events URL [-family NAME]
//	    Finds a histogram exemplar trace id in /metrics.json and asserts
//	    the same trace id appears as a wide event on /debug/events —
//	    the metrics→events pivot of docs/OBSERVABILITY.md.
//	obscheck dump -dir DIR -reason SUBSTR
//	    Asserts a flight-recorder black-box dump whose reason contains
//	    SUBSTR exists under DIR and carries at least one event.
//	obscheck buildinfo -metrics URL -version V
//	    Asserts build_info{version="V"} is exposed with value 1.
//	obscheck fleet -url URL -min-up N
//	    Asserts the gateway fleet rollup reports at least N backends up.
//	obscheck history -url URL -family NAME [-quantile Q] [-since S]
//	    [-min-points N] [-span-unix T] [-for D]
//	    Queries /metrics/history and asserts the family answers with at
//	    least N points (polling up to D); with -span-unix, additionally
//	    asserts points exist both before and at-or-after T — the
//	    restart-continuity check (history written by a SIGKILLed daemon
//	    must still be served, joined with post-restart samples).
//	obscheck anomaly -metrics URL -target NAME [-want V] [-for D]
//	    Polls /metrics.json until anomaly_active{target=NAME} equals V
//	    (default 1), proving an injected regression flipped the detector.
//
// Every subcommand exits 0 on success and 1 with a diagnostic on failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "obscheck: "+format+"\n", args...)
	os.Exit(1)
}

// getJSON fetches url and decodes its JSON body into out.
func getJSON(url string, out interface{}) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %s: %s", url, resp.Status, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("%s: %w", url, err)
	}
	return nil
}

// metricsDoc is the subset of /metrics.json the checks read.
type metricsDoc struct {
	Metrics []struct {
		Name    string            `json:"name"`
		Labels  map[string]string `json:"labels,omitempty"`
		Value   *float64          `json:"value,omitempty"`
		Buckets []struct {
			ExemplarTraceID string `json:"exemplar_trace_id,omitempty"`
		} `json:"buckets,omitempty"`
	} `json:"metrics"`
}

// eventsDoc is the subset of /debug/events the checks read.
type eventsDoc struct {
	Count  int `json:"count"`
	Events []struct {
		TraceID string `json:"trace_id"`
		Outcome string `json:"outcome"`
	} `json:"events"`
}

func cmdJoin(args []string) {
	fs := flag.NewFlagSet("join", flag.ExitOnError)
	metricsURL := fs.String("metrics", "", "the /metrics.json URL")
	eventsURL := fs.String("events", "", "the /debug/events URL")
	family := fs.String("family", "acq_process_ns", "histogram family whose exemplar to join")
	_ = fs.Parse(args)
	if *metricsURL == "" || *eventsURL == "" {
		fail("join: need -metrics and -events")
	}

	var m metricsDoc
	if err := getJSON(*metricsURL, &m); err != nil {
		fail("join: %v", err)
	}
	exemplars := map[string]bool{}
	for _, met := range m.Metrics {
		if met.Name != *family {
			continue
		}
		for _, b := range met.Buckets {
			if b.ExemplarTraceID != "" {
				exemplars[b.ExemplarTraceID] = true
			}
		}
	}
	if len(exemplars) == 0 {
		fail("join: %s exposes no exemplars on %s", *family, *metricsURL)
	}

	var ev eventsDoc
	if err := getJSON(*eventsURL+"?limit=0", &ev); err != nil {
		fail("join: %v", err)
	}
	if ev.Count == 0 {
		fail("join: no wide events on %s", *eventsURL)
	}
	for _, e := range ev.Events {
		if exemplars[e.TraceID] {
			fmt.Printf("obscheck: join OK — exemplar trace %s found among %d wide events\n", e.TraceID, ev.Count)
			return
		}
	}
	keys := make([]string, 0, len(exemplars))
	for k := range exemplars {
		keys = append(keys, k)
	}
	fail("join: no exemplar of %v among %d events", keys, ev.Count)
}

// dumpDoc is the subset of a flight-recorder black-box file the check reads.
type dumpDoc struct {
	Reason string `json:"reason"`
	Events []struct {
		Outcome string `json:"outcome"`
	} `json:"events"`
}

func cmdDump(args []string) {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	dir := fs.String("dir", "", "the daemon's -events-dump directory")
	reason := fs.String("reason", "", "substring the dump reason must contain")
	_ = fs.Parse(args)
	if *dir == "" {
		fail("dump: need -dir")
	}
	matches, err := filepath.Glob(filepath.Join(*dir, "flightrec-*.json"))
	if err != nil || len(matches) == 0 {
		fail("dump: no flightrec-*.json under %s", *dir)
	}
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var d dumpDoc
		if err := json.Unmarshal(data, &d); err != nil {
			fail("dump: %s does not parse: %v", path, err)
		}
		if strings.Contains(d.Reason, *reason) && len(d.Events) > 0 {
			fmt.Printf("obscheck: dump OK — %s (reason %q, %d events)\n", path, d.Reason, len(d.Events))
			return
		}
	}
	fail("dump: no dump with reason containing %q and events under %s (have %v)", *reason, *dir, matches)
}

func cmdBuildinfo(args []string) {
	fs := flag.NewFlagSet("buildinfo", flag.ExitOnError)
	metricsURL := fs.String("metrics", "", "the /metrics.json URL")
	version := fs.String("version", "", "expected build_info version label")
	_ = fs.Parse(args)
	if *metricsURL == "" || *version == "" {
		fail("buildinfo: need -metrics and -version")
	}
	var m metricsDoc
	if err := getJSON(*metricsURL, &m); err != nil {
		fail("buildinfo: %v", err)
	}
	for _, met := range m.Metrics {
		if met.Name != "build_info" {
			continue
		}
		if met.Labels["version"] != *version {
			fail("buildinfo: build_info version = %q, want %q", met.Labels["version"], *version)
		}
		if met.Value == nil || *met.Value != 1 {
			fail("buildinfo: build_info value = %v, want 1", met.Value)
		}
		if met.Labels["go_version"] == "" {
			fail("buildinfo: build_info lacks a go_version label")
		}
		fmt.Printf("obscheck: buildinfo OK — version %s commit %s\n", met.Labels["version"], met.Labels["commit"])
		return
	}
	fail("buildinfo: no build_info family on %s", *metricsURL)
}

func cmdFleet(args []string) {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	url := fs.String("url", "", "the gateway's /metrics/fleet URL")
	minUp := fs.Int("min-up", 1, "minimum gw_fleet_up backends")
	_ = fs.Parse(args)
	if *url == "" {
		fail("fleet: need -url")
	}
	sep := "?"
	if strings.Contains(*url, "?") {
		sep = "&"
	}
	var m metricsDoc
	if err := getJSON(*url+sep+"format=json", &m); err != nil {
		fail("fleet: %v", err)
	}
	up := 0
	for _, met := range m.Metrics {
		if met.Name == "gw_fleet_up" && met.Value != nil && *met.Value == 1 {
			up++
		}
	}
	if up < *minUp {
		fail("fleet: %d backends up, want at least %d", up, *minUp)
	}
	fmt.Printf("obscheck: fleet OK — %d backends up\n", up)
}

// historyDoc is the subset of a /metrics/history answer the checks read.
type historyDoc struct {
	Family     string `json:"family"`
	Resolution string `json:"resolution"`
	Series     []struct {
		Labels map[string]string `json:"labels,omitempty"`
		Points []struct {
			T     int64   `json:"t"`
			Value float64 `json:"value"`
		} `json:"points"`
	} `json:"series"`
}

func cmdHistory(args []string) {
	fs := flag.NewFlagSet("history", flag.ExitOnError)
	url := fs.String("url", "", "the /metrics/history URL")
	family := fs.String("family", "", "metric family to query")
	quantile := fs.Float64("quantile", 0, "histogram quantile to evaluate (0 = mean)")
	since := fs.String("since", "-30m", "window start (relative like -30m, RFC3339, or unix)")
	minPoints := fs.Int("min-points", 1, "minimum points across all series")
	spanUnix := fs.Int64("span-unix", 0, "when set, require points both before and at-or-after this unix second")
	waitFor := fs.Duration("for", 5*time.Second, "poll until the assertion holds, at most this long")
	_ = fs.Parse(args)
	if *url == "" || *family == "" {
		fail("history: need -url and -family")
	}
	q := fmt.Sprintf("%s?family=%s&since=%s", *url, *family, *since)
	if *quantile > 0 {
		q += fmt.Sprintf("&quantile=%g", *quantile)
	}
	deadline := time.Now().Add(*waitFor)
	var lastErr error
	for {
		var h historyDoc
		if err := getJSON(q, &h); err != nil {
			lastErr = err
		} else {
			points, before, after := 0, 0, 0
			for _, s := range h.Series {
				points += len(s.Points)
				for _, p := range s.Points {
					if p.T < *spanUnix {
						before++
					} else {
						after++
					}
				}
			}
			if points >= *minPoints && (*spanUnix == 0 || (before > 0 && after > 0)) {
				if *spanUnix > 0 {
					fmt.Printf("obscheck: history OK — %s has %d points at %s resolution (%d before / %d after unix %d)\n",
						*family, points, h.Resolution, before, after, *spanUnix)
				} else {
					fmt.Printf("obscheck: history OK — %s has %d points at %s resolution\n",
						*family, points, h.Resolution)
				}
				return
			}
			lastErr = fmt.Errorf("%s: %d points (want >= %d), %d/%d around span mark", *family, points, *minPoints, before, after)
		}
		if time.Now().After(deadline) {
			fail("history: %v", lastErr)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func cmdAnomaly(args []string) {
	fs := flag.NewFlagSet("anomaly", flag.ExitOnError)
	metricsURL := fs.String("metrics", "", "the /metrics.json URL")
	target := fs.String("target", "", "anomaly target name (the detector's target label)")
	want := fs.Float64("want", 1, "expected anomaly_active value")
	waitFor := fs.Duration("for", 10*time.Second, "poll until the gauge matches, at most this long")
	_ = fs.Parse(args)
	if *metricsURL == "" || *target == "" {
		fail("anomaly: need -metrics and -target")
	}
	deadline := time.Now().Add(*waitFor)
	var last string
	for {
		var m metricsDoc
		if err := getJSON(*metricsURL, &m); err != nil {
			last = err.Error()
		} else {
			active, score := -1.0, 0.0
			for _, met := range m.Metrics {
				if met.Labels["target"] != *target || met.Value == nil {
					continue
				}
				switch met.Name {
				case "anomaly_active":
					active = *met.Value
				case "anomaly_score":
					score = *met.Value
				}
			}
			if active == *want {
				fmt.Printf("obscheck: anomaly OK — %s active=%g (score %.2f)\n", *target, active, score)
				return
			}
			last = fmt.Sprintf("%s active=%g score=%.2f, want active=%g", *target, active, score, *want)
		}
		if time.Now().After(deadline) {
			fail("anomaly: %s", last)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func main() {
	if len(os.Args) < 2 {
		fail("usage: obscheck join|dump|buildinfo|fleet|history|anomaly [flags]")
	}
	switch os.Args[1] {
	case "join":
		cmdJoin(os.Args[2:])
	case "dump":
		cmdDump(os.Args[2:])
	case "buildinfo":
		cmdBuildinfo(os.Args[2:])
	case "fleet":
		cmdFleet(os.Args[2:])
	case "history":
		cmdHistory(os.Args[2:])
	case "anomaly":
		cmdAnomaly(os.Args[2:])
	default:
		fail("unknown subcommand %q (want join, dump, buildinfo, fleet, history or anomaly)", os.Args[1])
	}
}
