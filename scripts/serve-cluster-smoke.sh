#!/bin/sh
# serve-cluster-smoke.sh: end-to-end smoke test of the cluster topology —
# one imsgw gateway consistent-hashing sessions over three imsd backends,
# with a rolling-restart-shaped failure injected mid-burst.
#
# Builds imsd, imsgw, imsload and the httpget/clusterreport helpers, then:
#   1. starts three imsd backends (each with /readyz up and a drain grace);
#   2. starts imsgw over the three, probing their /readyz endpoints, and
#      asserts the gateway's own /healthz and /readyz answer 200;
#   3. runs a 6-second, 16-client imsload burst in cluster mode against
#      the gateway, and SIGTERMs one backend two seconds in;
#   4. asserts the burst finished with zero transport/protocol errors, a
#      shed rate inside the loss bound (default 5%), and frames served by
#      at least two distinct backends (scripts/clusterreport);
#   5. asserts the killed backend drained cleanly, the gateway's /readyz
#      stayed 200 throughout (two backends remained on the ring), and the
#      gateway itself drains cleanly on SIGTERM.
set -eu

GO=${GO:-go}
GW_PORT=${CLUSTER_SMOKE_GW_PORT:-17170}
GW_METRICS=${CLUSTER_SMOKE_GW_METRICS_PORT:-17190}
B1_PORT=17171; B1_METRICS=17191
B2_PORT=17172; B2_METRICS=17192
B3_PORT=17173; B3_METRICS=17193
MAX_SHED=${CLUSTER_SMOKE_MAX_SHED:-0.05}
TMP=$(mktemp -d)
PIDS=""
GW_PID=""
B2_PID=""

cleanup() {
    for pid in $PIDS; do
        if kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "cluster-smoke: building binaries"
$GO build -o "$TMP/imsd" ./cmd/imsd
$GO build -o "$TMP/imsgw" ./cmd/imsgw
$GO build -o "$TMP/imsload" ./cmd/imsload
$GO build -o "$TMP/httpget" ./scripts/httpget
$GO build -o "$TMP/clusterreport" ./scripts/clusterreport

# start_backend launches one imsd and leaves its pid in LAST_PID.  (No
# command substitution: the daemon must be a child of THIS shell so the
# script can `wait` on it for the clean-drain assertion.)
start_backend() {
    port=$1; metrics=$2; log=$3
    "$TMP/imsd" -addr "127.0.0.1:$port" -metrics "127.0.0.1:$metrics" \
        -drain-timeout 10s -drain-grace 1s >"$log" 2>&1 &
    LAST_PID=$!
}

echo "cluster-smoke: starting three imsd backends"
start_backend "$B1_PORT" "$B1_METRICS" "$TMP/imsd1.log"; B1_PID=$LAST_PID; PIDS="$PIDS $B1_PID"
start_backend "$B2_PORT" "$B2_METRICS" "$TMP/imsd2.log"; B2_PID=$LAST_PID; PIDS="$PIDS $B2_PID"
start_backend "$B3_PORT" "$B3_METRICS" "$TMP/imsd3.log"; B3_PID=$LAST_PID; PIDS="$PIDS $B3_PID"
for metrics in "$B1_METRICS" "$B2_METRICS" "$B3_METRICS"; do
    if ! "$TMP/httpget" -expect 200 -for 5s "http://127.0.0.1:$metrics/readyz" >/dev/null; then
        echo "cluster-smoke: FAIL — backend on :$metrics never became ready"
        cat "$TMP"/imsd*.log; exit 1
    fi
done

echo "cluster-smoke: starting imsgw over the fleet"
"$TMP/imsgw" -addr "127.0.0.1:$GW_PORT" -metrics "127.0.0.1:$GW_METRICS" \
    -backends "127.0.0.1:$B1_PORT@http://127.0.0.1:$B1_METRICS/readyz,127.0.0.1:$B2_PORT@http://127.0.0.1:$B2_METRICS/readyz,127.0.0.1:$B3_PORT@http://127.0.0.1:$B3_METRICS/readyz" \
    -probe-interval 200ms -drain-timeout 10s >"$TMP/imsgw.log" 2>&1 &
GW_PID=$!; PIDS="$PIDS $GW_PID"
if ! "$TMP/httpget" -expect 200 -for 5s "http://127.0.0.1:$GW_METRICS/healthz" >/dev/null; then
    echo "cluster-smoke: FAIL — gateway /healthz never answered 200"; cat "$TMP/imsgw.log"; exit 1
fi
if ! "$TMP/httpget" -expect 200 -for 5s "http://127.0.0.1:$GW_METRICS/readyz" >/dev/null; then
    echo "cluster-smoke: FAIL — gateway /readyz never answered 200"; cat "$TMP/imsgw.log"; exit 1
fi

echo "cluster-smoke: 6s cluster burst, 16 clients; killing backend 2 mid-burst"
"$TMP/imsload" -addr "127.0.0.1:$GW_PORT" -topology cluster -clients 16 \
    -duration 6s -tof 128 -json "$TMP/report.json" \
    -wait-ready "http://127.0.0.1:$GW_METRICS/readyz" >"$TMP/imsload.out" 2>&1 &
LOAD_PID=$!; PIDS="$PIDS $LOAD_PID"
sleep 2
kill -TERM "$B2_PID"

rc=0
wait "$LOAD_PID" || rc=$?
cat "$TMP/imsload.out"
if [ "$rc" -ne 0 ]; then
    echo "cluster-smoke: FAIL — imsload reported transport/protocol errors"
    cat "$TMP/imsgw.log"; exit 1
fi

echo "cluster-smoke: checking loss bound and fan-out in the report"
if ! "$TMP/clusterreport" -report "$TMP/report.json" -max-shed "$MAX_SHED" -min-backends 2; then
    echo "cluster-smoke: FAIL — report violates cluster invariants"
    cat "$TMP/report.json"; cat "$TMP/imsgw.log"; exit 1
fi

echo "cluster-smoke: asserting the killed backend drained cleanly"
rc=0
wait "$B2_PID" || rc=$?
B2_PID=""
if [ "$rc" -ne 0 ] || ! grep -q "drained cleanly" "$TMP/imsd2.log"; then
    echo "cluster-smoke: FAIL — backend 2 exited $rc without a clean drain"
    cat "$TMP/imsd2.log"; exit 1
fi

# With two backends still on the ring the gateway must still be ready.
if ! "$TMP/httpget" -expect 200 "http://127.0.0.1:$GW_METRICS/readyz" >/dev/null; then
    echo "cluster-smoke: FAIL — gateway /readyz not 200 after losing one backend"
    cat "$TMP/imsgw.log"; exit 1
fi

echo "cluster-smoke: draining imsgw"
kill -TERM "$GW_PID"
rc=0
wait "$GW_PID" || rc=$?
GW_PID=""
if [ "$rc" -ne 0 ] || ! grep -q "drained cleanly" "$TMP/imsgw.log"; then
    echo "cluster-smoke: FAIL — imsgw exited $rc without a clean drain"
    cat "$TMP/imsgw.log"; exit 1
fi
echo "cluster-smoke: OK"
