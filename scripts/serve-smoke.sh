#!/bin/sh
# serve-smoke.sh: end-to-end smoke test of the acquisition service.
#
# Builds imsd and imsload, starts the daemon on an ephemeral port, drives a
# 2-second burst from 16 concurrent clients, then SIGTERMs the daemon and
# asserts: imsload exited 0 (zero transport/protocol errors) and imsd
# drained cleanly (exit 0, "drained cleanly" in its output).
set -eu

GO=${GO:-go}
PORT=${SMOKE_PORT:-17071}
TMP=$(mktemp -d)
DAEMON_PID=""

cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "serve-smoke: building binaries"
$GO build -o "$TMP/imsd" ./cmd/imsd
$GO build -o "$TMP/imsload" ./cmd/imsload

echo "serve-smoke: starting imsd on 127.0.0.1:$PORT"
"$TMP/imsd" -addr "127.0.0.1:$PORT" -drain-timeout 10s >"$TMP/imsd.log" 2>&1 &
DAEMON_PID=$!

# Wait for the listening line (up to ~5s).
i=0
until grep -q "listening on" "$TMP/imsd.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "serve-smoke: FAIL — imsd never started"; cat "$TMP/imsd.log"; exit 1
    fi
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "serve-smoke: FAIL — imsd exited early"; cat "$TMP/imsd.log"; exit 1
    fi
    sleep 0.1
done

echo "serve-smoke: 2s burst, 16 clients"
if ! "$TMP/imsload" -addr "127.0.0.1:$PORT" -clients 16 -duration 2s -tof 128; then
    echo "serve-smoke: FAIL — imsload reported errors"
    cat "$TMP/imsd.log"
    exit 1
fi

echo "serve-smoke: draining imsd"
kill -TERM "$DAEMON_PID"
rc=0
wait "$DAEMON_PID" || rc=$?
DAEMON_PID=""
if [ "$rc" -ne 0 ]; then
    echo "serve-smoke: FAIL — imsd exited $rc"; cat "$TMP/imsd.log"; exit 1
fi
if ! grep -q "drained cleanly" "$TMP/imsd.log"; then
    echo "serve-smoke: FAIL — no clean drain"; cat "$TMP/imsd.log"; exit 1
fi
echo "serve-smoke: OK"
