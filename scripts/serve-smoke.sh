#!/bin/sh
# serve-smoke.sh: end-to-end smoke test of the acquisition service.
#
# Builds imsd, imsload, imstop and the httpget helper, starts the daemon on
# ephemeral ports with its metrics/health server up, then asserts:
#   1. /healthz answers 200 and /readyz answers 200 while serving;
#   2. imsload -wait-ready completes a 2-second, 16-client burst with zero
#      transport/protocol errors;
#   3. imstop -once renders a console frame (health verdict + shard queues)
#      against the live daemon;
#   4. after SIGTERM, /readyz flips to 503 inside the drain-grace window
#      while /healthz stays 200 (not-ready but alive);
#   5. imsd drains cleanly (exit 0, "drained cleanly" in its output).
set -eu

GO=${GO:-go}
PORT=${SMOKE_PORT:-17071}
METRICS_PORT=${SMOKE_METRICS_PORT:-17091}
TMP=$(mktemp -d)
DAEMON_PID=""

cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "serve-smoke: building binaries"
$GO build -o "$TMP/imsd" ./cmd/imsd
$GO build -o "$TMP/imsload" ./cmd/imsload
$GO build -o "$TMP/imstop" ./cmd/imstop
$GO build -o "$TMP/httpget" ./scripts/httpget

echo "serve-smoke: starting imsd on 127.0.0.1:$PORT (metrics on :$METRICS_PORT)"
"$TMP/imsd" -addr "127.0.0.1:$PORT" -metrics "127.0.0.1:$METRICS_PORT" \
    -drain-timeout 10s -drain-grace 2s >"$TMP/imsd.log" 2>&1 &
DAEMON_PID=$!

echo "serve-smoke: waiting for liveness and readiness"
if ! "$TMP/httpget" -expect 200 -for 5s "http://127.0.0.1:$METRICS_PORT/healthz" >/dev/null; then
    echo "serve-smoke: FAIL — /healthz never answered 200"; cat "$TMP/imsd.log"; exit 1
fi
if ! "$TMP/httpget" -expect 200 -for 5s "http://127.0.0.1:$METRICS_PORT/readyz" >"$TMP/readyz.json"; then
    echo "serve-smoke: FAIL — /readyz never answered 200"; cat "$TMP/imsd.log"; exit 1
fi
if ! grep -q '"ready": true' "$TMP/readyz.json"; then
    echo "serve-smoke: FAIL — /readyz body lacks ready:true"; cat "$TMP/readyz.json"; exit 1
fi

echo "serve-smoke: 2s burst, 16 clients (gated on -wait-ready)"
if ! "$TMP/imsload" -addr "127.0.0.1:$PORT" -clients 16 -duration 2s -tof 128 \
    -wait-ready "http://127.0.0.1:$METRICS_PORT/readyz"; then
    echo "serve-smoke: FAIL — imsload reported errors"
    cat "$TMP/imsd.log"
    exit 1
fi

echo "serve-smoke: imstop -once against the live daemon"
if ! "$TMP/imstop" -once -url "http://127.0.0.1:$METRICS_PORT" >"$TMP/imstop.out"; then
    echo "serve-smoke: FAIL — imstop -once exited nonzero"; cat "$TMP/imstop.out"; exit 1
fi
for want in "health:" "shard" "latency:"; do
    if ! grep -q "$want" "$TMP/imstop.out"; then
        echo "serve-smoke: FAIL — imstop output lacks '$want'"; cat "$TMP/imstop.out"; exit 1
    fi
done

echo "serve-smoke: draining imsd, asserting readiness flips"
kill -TERM "$DAEMON_PID"
# Inside the 2s drain-grace window the daemon still serves HTTP but must
# report not-ready; liveness must stay 200 (drained, not restarted).
if ! "$TMP/httpget" -expect 503 -for 2s -interval 50ms "http://127.0.0.1:$METRICS_PORT/readyz" >"$TMP/readyz-drain.json"; then
    echo "serve-smoke: FAIL — /readyz never flipped to 503 during drain"; cat "$TMP/imsd.log"; exit 1
fi
if ! grep -q '"reason": "draining"' "$TMP/readyz-drain.json"; then
    echo "serve-smoke: FAIL — draining /readyz body lacks the reason"; cat "$TMP/readyz-drain.json"; exit 1
fi
if ! "$TMP/httpget" -expect 200 "http://127.0.0.1:$METRICS_PORT/healthz" >/dev/null; then
    echo "serve-smoke: FAIL — /healthz not 200 during drain"; exit 1
fi

rc=0
wait "$DAEMON_PID" || rc=$?
DAEMON_PID=""
if [ "$rc" -ne 0 ]; then
    echo "serve-smoke: FAIL — imsd exited $rc"; cat "$TMP/imsd.log"; exit 1
fi
if ! grep -q "drained cleanly" "$TMP/imsd.log"; then
    echo "serve-smoke: FAIL — no clean drain"; cat "$TMP/imsd.log"; exit 1
fi
echo "serve-smoke: OK"
