#!/bin/sh
# trace-smoke.sh: end-to-end tracing smoke test.
#
# Starts imsd with -trace (keep-everything sampling), drives a short
# imsload burst with client-side tracing and a JSON report, drains the
# daemon, then asserts: the server's Perfetto trace parses and contains a
# span for every pipeline stage (socket read, queue wait, worker, modeled
# FPGA capture/accumulate/FHT, XD1 DMA, response write), the client's
# trace contains its request spans, and the imsload JSON report parses
# with a server span-stage breakdown.
set -eu

GO=${GO:-go}
PORT=${SMOKE_PORT:-17072}
TMP=$(mktemp -d)
DAEMON_PID=""

cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "trace-smoke: building binaries"
$GO build -o "$TMP/imsd" ./cmd/imsd
$GO build -o "$TMP/imsload" ./cmd/imsload
$GO build -o "$TMP/tracecheck" ./scripts/tracecheck

echo "trace-smoke: starting imsd on 127.0.0.1:$PORT with tracing"
"$TMP/imsd" -addr "127.0.0.1:$PORT" -drain-timeout 10s \
    -trace "$TMP/server-trace.json" -trace-ring 32 >"$TMP/imsd.log" 2>&1 &
DAEMON_PID=$!

i=0
until grep -q "listening on" "$TMP/imsd.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "trace-smoke: FAIL — imsd never started"; cat "$TMP/imsd.log"; exit 1
    fi
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "trace-smoke: FAIL — imsd exited early"; cat "$TMP/imsd.log"; exit 1
    fi
    sleep 0.1
done

echo "trace-smoke: 1s burst, 4 clients, traced"
if ! "$TMP/imsload" -addr "127.0.0.1:$PORT" -clients 4 -duration 1s -tof 128 \
    -json "$TMP/report.json" -trace "$TMP/client-trace.json"; then
    echo "trace-smoke: FAIL — imsload reported errors"
    cat "$TMP/imsd.log"
    exit 1
fi

echo "trace-smoke: draining imsd"
kill -TERM "$DAEMON_PID"
rc=0
wait "$DAEMON_PID" || rc=$?
DAEMON_PID=""
if [ "$rc" -ne 0 ]; then
    echo "trace-smoke: FAIL — imsd exited $rc"; cat "$TMP/imsd.log"; exit 1
fi

echo "trace-smoke: validating server trace"
"$TMP/tracecheck" "$TMP/server-trace.json" \
    frame socket_read queue_wait worker hybrid_offload \
    fpga_capture fpga_accumulate xd1_dma_in fpga_fht xd1_dma_out \
    write_response

echo "trace-smoke: validating client trace"
"$TMP/tracecheck" "$TMP/client-trace.json" client_request

echo "trace-smoke: validating imsload JSON report"
for key in '"throughput_rps"' '"shed_rate"' '"latency_ns"' '"server"' '"queue_wait_ns_total"'; do
    if ! grep -q "$key" "$TMP/report.json"; then
        echo "trace-smoke: FAIL — report missing $key"; cat "$TMP/report.json"; exit 1
    fi
done

echo "trace-smoke: OK"
