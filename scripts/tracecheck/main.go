// Command tracecheck validates a Chrome/Perfetto trace-event JSON file
// produced by the telemetry tracer: it must parse, every "X" event must be
// well-formed (non-negative ts/dur, a name, a trace_id arg), and every
// span name given on the command line must appear at least once.  Used by
// the trace-smoke CI gate to prove an end-to-end run emitted the full
// stage taxonomy.
//
// Usage:
//
//	tracecheck FILE SPAN [SPAN...]
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// event is the subset of the trace-event schema the checker inspects.
type event struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur"`
	Args map[string]interface{} `json:"args"`
}

// file is the Perfetto JSON object wrapper.
type file struct {
	TraceEvents []event `json:"traceEvents"`
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	if len(os.Args) < 3 {
		fail("usage: tracecheck FILE SPAN [SPAN...]")
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail("%v", err)
	}
	var f file
	if err := json.Unmarshal(raw, &f); err != nil {
		fail("%s: not valid trace JSON: %v", os.Args[1], err)
	}

	seen := map[string]int{}
	spans := 0
	for i, ev := range f.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.Name == "" {
				fail("event %d: complete event with no name", i)
			}
			if ev.Ts < 0 || ev.Dur < 0 {
				fail("event %d (%s): negative ts %g or dur %g", i, ev.Name, ev.Ts, ev.Dur)
			}
			if _, ok := ev.Args["trace_id"]; !ok {
				fail("event %d (%s): missing trace_id arg", i, ev.Name)
			}
			seen[ev.Name]++
			spans++
		case "M":
			// Metadata (thread names) — nothing to check.
		default:
			fail("event %d: unexpected phase %q", i, ev.Ph)
		}
	}
	if spans == 0 {
		fail("%s: no spans", os.Args[1])
	}

	missing := 0
	for _, want := range os.Args[2:] {
		if seen[want] == 0 {
			fmt.Fprintf(os.Stderr, "tracecheck: missing span %q\n", want)
			missing++
		}
	}
	if missing > 0 {
		fail("%d required spans missing (have %v)", missing, keys(seen))
	}
	fmt.Printf("tracecheck: OK — %d spans, all %d required names present\n", spans, len(os.Args)-2)
}

// keys returns the map's keys for error reporting.
func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
