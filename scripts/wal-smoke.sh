#!/bin/sh
# wal-smoke.sh: end-to-end durability smoke test of the frame log
# (docs/DURABILITY.md).  Two phases:
#
# Phase A — capture determinism.  imsd runs with -framelog-fsync always
# and small segments; a rate-limited imsload burst is captured, the daemon
# drains cleanly, framedump verifies every record CRC and that the capture
# holds exactly the acknowledged frames, then a FRESH daemon replays the
# capture via `imsload -replay` and the response digests of the live and
# replayed runs must be bit-identical.
#
# Phase B — crash recovery.  A second daemon takes a burst and is killed
# with SIGKILL mid-traffic.  Every acknowledged frame must be on disk
# (fsync always), the restarted daemon must report the pending set and
# re-process all of it (acq_recovered_frames_total), and then drain
# cleanly.  Zero acknowledged work may be lost.
set -eu

GO=${GO:-go}
PORT=${WAL_SMOKE_PORT:-17371}
METRICS_PORT=${WAL_SMOKE_METRICS_PORT:-17391}
TMP=$(mktemp -d)
DAEMON_PID=""

cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

die() {
    echo "wal-smoke: FAIL — $1"
    shift
    for f in "$@"; do
        echo "---- $f ----"
        cat "$f" 2>/dev/null || true
    done
    exit 1
}

# json_int FILE KEY: pull a top-level integer out of an indented report.
json_int() {
    sed -n "s/.*\"$2\": \([0-9][0-9]*\).*/\1/p" "$1" | head -1
}

echo "wal-smoke: building binaries"
$GO build -o "$TMP/imsd" ./cmd/imsd
$GO build -o "$TMP/imsload" ./cmd/imsload
$GO build -o "$TMP/framedump" ./cmd/framedump
$GO build -o "$TMP/httpget" ./scripts/httpget

WAL="$TMP/wal"

echo "wal-smoke: [A] starting imsd with -framelog (fsync always, 256 KiB segments)"
"$TMP/imsd" -addr "127.0.0.1:$PORT" -metrics "127.0.0.1:$METRICS_PORT" \
    -framelog "$WAL" -framelog-fsync always -framelog-segment-bytes 262144 -framelog-retain 0 \
    -drain-timeout 10s >"$TMP/imsd-a.log" 2>&1 &
DAEMON_PID=$!

echo "wal-smoke: [A] rate-limited capture burst"
if ! "$TMP/imsload" -addr "127.0.0.1:$PORT" -clients 4 -rate 40 -duration 2s \
    -tof 64 -json "$TMP/live.json" \
    -wait-ready "http://127.0.0.1:$METRICS_PORT/readyz" >"$TMP/live.out" 2>&1; then
    die "live burst reported errors" "$TMP/live.out" "$TMP/imsd-a.log"
fi
LIVE_OK=$(json_int "$TMP/live.json" ok)
LIVE_SHED=$(json_int "$TMP/live.json" shed)
LIVE_DIGEST=$(sed -n 's/.*"response_digest": "\([0-9a-f]*\)".*/\1/p' "$TMP/live.json")
[ -n "$LIVE_OK" ] && [ "$LIVE_OK" -gt 0 ] || die "no frames acknowledged in the live burst" "$TMP/live.out"
[ "$LIVE_SHED" = 0 ] || die "rate-limited burst shed $LIVE_SHED frames; capture would not be complete" "$TMP/live.out"

echo "wal-smoke: [A] draining imsd"
kill -TERM "$DAEMON_PID"
rc=0; wait "$DAEMON_PID" || rc=$?
DAEMON_PID=""
[ "$rc" -eq 0 ] || die "imsd exited $rc on drain" "$TMP/imsd-a.log"
grep -q "drained cleanly" "$TMP/imsd-a.log" || die "no clean drain" "$TMP/imsd-a.log"

echo "wal-smoke: [A] verifying the capture with framedump"
"$TMP/framedump" -log "$WAL" >"$TMP/dump-a.out" || die "framedump rejected the capture" "$TMP/dump-a.out"
grep -q "all record CRCs verified" "$TMP/dump-a.out" || die "framedump did not verify CRCs" "$TMP/dump-a.out"
WAL_RECORDS=$(sed -n 's/^total: [0-9]* segments, \([0-9]*\) records.*/\1/p' "$TMP/dump-a.out")
[ "$WAL_RECORDS" = "$LIVE_OK" ] || \
    die "capture holds $WAL_RECORDS records but $LIVE_OK frames were acknowledged" "$TMP/dump-a.out" "$TMP/live.json"

echo "wal-smoke: [A] replaying the capture through a fresh daemon"
"$TMP/imsd" -addr "127.0.0.1:$PORT" -metrics "127.0.0.1:$METRICS_PORT" \
    -drain-timeout 10s >"$TMP/imsd-replay.log" 2>&1 &
DAEMON_PID=$!
if ! "$TMP/imsload" -addr "127.0.0.1:$PORT" -replay "$WAL" -replay-rate 0 \
    -json "$TMP/replay.json" \
    -wait-ready "http://127.0.0.1:$METRICS_PORT/readyz" >"$TMP/replay.out" 2>&1; then
    die "replay reported errors" "$TMP/replay.out" "$TMP/imsd-replay.log"
fi
REPLAY_OK=$(json_int "$TMP/replay.json" ok)
REPLAY_DIGEST=$(sed -n 's/.*"response_digest": "\([0-9a-f]*\)".*/\1/p' "$TMP/replay.json")
grep -q '"replay"' "$TMP/replay.json" || die "replay report lacks the replay block" "$TMP/replay.json"
[ "$REPLAY_OK" = "$LIVE_OK" ] || die "replay acknowledged $REPLAY_OK frames, live run $LIVE_OK" "$TMP/replay.json"
[ -n "$LIVE_DIGEST" ] || die "live report lacks a response digest" "$TMP/live.json"
[ "$REPLAY_DIGEST" = "$LIVE_DIGEST" ] || \
    die "replay digest $REPLAY_DIGEST != live digest $LIVE_DIGEST (responses not bit-identical)" "$TMP/replay.json" "$TMP/live.json"
kill -TERM "$DAEMON_PID"; wait "$DAEMON_PID" || true
DAEMON_PID=""
echo "wal-smoke: [A] OK — $LIVE_OK frames captured, replay digest matches ($LIVE_DIGEST)"

WAL2="$TMP/wal2"

echo "wal-smoke: [B] starting imsd for the crash run"
"$TMP/imsd" -addr "127.0.0.1:$PORT" -metrics "127.0.0.1:$METRICS_PORT" \
    -framelog "$WAL2" -framelog-fsync always -framelog-segment-bytes 262144 -framelog-retain 0 \
    >"$TMP/imsd-b.log" 2>&1 &
DAEMON_PID=$!

echo "wal-smoke: [B] burst, then SIGKILL mid-traffic"
"$TMP/imsload" -addr "127.0.0.1:$PORT" -clients 4 -rate 40 -duration 5s \
    -tof 64 -json "$TMP/crash.json" \
    -wait-ready "http://127.0.0.1:$METRICS_PORT/readyz" >"$TMP/crash.out" 2>&1 &
LOAD_PID=$!
sleep 1.2
kill -9 "$DAEMON_PID"
DAEMON_PID=""
wait "$LOAD_PID" || true # transport errors are the point
CRASH_OK=$(json_int "$TMP/crash.json" ok)
[ -n "$CRASH_OK" ] && [ "$CRASH_OK" -gt 0 ] || die "no frames acknowledged before the kill" "$TMP/crash.out"

echo "wal-smoke: [B] restarting on the same frame log"
"$TMP/imsd" -addr "127.0.0.1:$PORT" -metrics "127.0.0.1:$METRICS_PORT" \
    -framelog "$WAL2" -framelog-fsync always -framelog-segment-bytes 262144 -framelog-retain 0 \
    -drain-timeout 10s >"$TMP/imsd-b2.log" 2>&1 &
DAEMON_PID=$!
"$TMP/httpget" -expect 200 -for 5s "http://127.0.0.1:$METRICS_PORT/readyz" >/dev/null || \
    die "restarted daemon never became ready" "$TMP/imsd-b2.log"
grep -q "framelog recovered" "$TMP/imsd-b2.log" || die "no recovery log line" "$TMP/imsd-b2.log"
WAL2_RECORDS=$(grep "framelog recovered" "$TMP/imsd-b2.log" | sed -n 's/.*records=\([0-9]*\).*/\1/p')
PENDING=$(grep "framelog recovered" "$TMP/imsd-b2.log" | sed -n 's/.*pending=\([0-9]*\).*/\1/p')
# fsync always: every acknowledged frame must be on disk.
[ "$WAL2_RECORDS" -ge "$CRASH_OK" ] || \
    die "log holds $WAL2_RECORDS records but $CRASH_OK frames were acknowledged — acked work was lost" "$TMP/imsd-b2.log"

echo "wal-smoke: [B] waiting for $PENDING pending frames to re-process"
i=0
while :; do
    "$TMP/httpget" -expect 200 "http://127.0.0.1:$METRICS_PORT/metrics" >"$TMP/metrics.out" 2>/dev/null || true
    RECOVERED=$(sed -n 's/^acq_recovered_frames_total{outcome="ok"} \([0-9]*\)$/\1/p' "$TMP/metrics.out")
    REC_ERRS=$(sed -n 's/^acq_recovered_frames_total{outcome="error"} \([0-9]*\)$/\1/p' "$TMP/metrics.out")
    [ "${REC_ERRS:-0}" = 0 ] || die "recovery rejected $REC_ERRS records" "$TMP/imsd-b2.log"
    [ "${RECOVERED:-0}" = "$PENDING" ] && break
    i=$((i + 1))
    [ "$i" -lt 100 ] || die "recovered ${RECOVERED:-0}/$PENDING frames after 10s" "$TMP/imsd-b2.log" "$TMP/metrics.out"
    sleep 0.1
done

echo "wal-smoke: [B] draining the recovered daemon"
kill -TERM "$DAEMON_PID"
rc=0; wait "$DAEMON_PID" || rc=$?
DAEMON_PID=""
[ "$rc" -eq 0 ] || die "recovered imsd exited $rc on drain" "$TMP/imsd-b2.log"
grep -q "drained cleanly" "$TMP/imsd-b2.log" || die "no clean drain after recovery" "$TMP/imsd-b2.log"

# The log survived a SIGKILL and a recovery pass: it must still verify,
# and nothing may be left pending for a third run.
"$TMP/framedump" -log "$WAL2" >"$TMP/dump-b.out" || die "post-crash capture corrupt" "$TMP/dump-b.out"
grep -q "all record CRCs verified" "$TMP/dump-b.out" || die "post-crash CRCs failed" "$TMP/dump-b.out"

echo "wal-smoke: [B] OK — $CRASH_OK acked frames survived SIGKILL, $PENDING replayed, 0 lost"
echo "wal-smoke: OK"
